// Package cluster is the distribution substrate of Hillview (paper §5.2
// and §6): worker servers hold dataset partitions and run vizketch
// summarize functions; the root connects to workers over TCP and builds
// execution trees whose remote edges carry only small messages —
// queries down, summaries up.
//
// The paper uses gRPC with RxJava streams; under the stdlib-only
// constraint this package implements the same contract with
// length-prefixed binary frames over net.Conn: request multiplexing
// over one connection per worker, server-streamed partial results,
// out-of-band cancellation that bypasses request queues (paper §5.3),
// and per-connection byte/frame/codec-time accounting (which the
// evaluation harness uses to reproduce the bandwidth measurements of
// Figure 5, surfaced in production through /api/status).
//
// # Wire format
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload:
//
//	magic (0x48 'H') | version (0x01) | kind | flags | uvarint reqID | body | crc32c
//
// The codec is stateless: frames are self-contained, encoded by
// hand-rolled per-type codecs (no reflection) with little-endian
// fixed-width words for counter/float arrays and uvarints for lengths
// (package wire). Any frame decodes in isolation, so byte-level frame
// duplication — which corrupted the seed's stateful per-connection gob
// stream ("duplicate type received") — is now a tolerated fault, and
// the chaos harness injects it at the transport layer.
//
// The trailing CRC-32C covers the payload between the outer length and
// itself. It defends against stream desynchronization, not TCP bit rot:
// a frame truncated mid-write whose connection keeps delivering bytes
// splices the next frames into its own body, and such a splice can
// parse into a plausible envelope with garbage values. The checksum
// turns every splice into a decode error, which fails the connection
// and hands the in-flight ranges to the failover path below.
//
// Frame kinds and bodies (strings are uvarint-length-prefixed):
//
//	MsgLoad      datasetID, source
//	MsgMap       datasetID, newID, opTag, op body        (engine.AppendOpWire)
//	MsgSketch    datasetID, sketchTag, sketch body       (sketch.AppendSketchWire)
//	MsgCancel    —
//	MsgPing      —
//	MsgDrop      datasetID
//	MsgOK        uvarint numLeaves
//	MsgPartial   uvarint done, total, seq, resultTag, result body
//	MsgFinal     uvarint done, total, 0,   resultTag, result body
//	MsgError     err string                              (flagErrMissing in flags)
//	MsgGobEnvelope  gob(Envelope) with a fresh encoder   (fallback, see below)
//
// Per-type tags are registered in sketch (RegisterResultCodec /
// RegisterSketchCodec) and engine (the MapOp switch); tag spaces are
// independent, tag 0 is reserved, and tags are append-only wire format.
//
// # Delta partials
//
// Partial results are cumulative snapshots, so consecutive partials of
// one request differ only by the rows scanned in between. For
// monotone-counter results implementing sketch.DeltaWireResult
// (histogram, hist2d, trellis) a MsgPartial after the first carries
// flagDelta and ships only per-bucket increments as zigzag varints; the
// receiving frameConn reconstructs the full snapshot against the
// request's previous partial before anything above the transport sees
// it. Sequence numbers (uvarint seq, starting at 1 per request) keep
// sender and receiver chains aligned: a replayed frame with seq ≤ the
// last seen is answered with the already-reconstructed snapshot
// (idempotent under duplication), a delta with no base or a skipped
// base is a clean decode error, and finals are always full snapshots
// that retire the chain. MsgCancel remains out-of-band and stateless.
//
// # Gob fallback
//
// An envelope whose sketch, map op, or result type has no registered
// binary codec is sent as MsgGobEnvelope: the whole Envelope through a
// fresh gob encoder, one per frame, so the fallback is as stateless as
// the typed path. Third-party sketches therefore keep working over the
// wire — registering gob types (as before) is sufficient; registering a
// binary codec is the fast path. The registration contract for a new
// sketch: add the prototype to sketch.wireSketches, implement
// WireSketch on the sketch and WireResult on its summary, register both
// under fresh tags, and add an oracle + testkit instance — the codec
// coverage test (sketch.TestWireCodecCoverage) and the oracle coverage
// test each fail a sketch that skips its half.
//
// # Replica map
//
// ConnectOptions with Options.Replication = R splits the worker list
// into len(addrs)/R partition groups; worker i serves group i mod
// nGroups, so every group has R replicas. The map relies on a property
// the storage layer already guarantees: a dataset source is a pure
// function of its spec string, and {worker} in a source expands to the
// partition *group*, not the worker index. Two replicas of a group
// therefore regenerate bit-identical shards — same partition IDs, hence
// same per-partition sampling seeds — and answering any range of leaves
// from either replica yields byte-for-byte the same summaries. The
// replicated dataset verifies this at load time (replicas of one group
// must report identical leaf counts) and poisons the dataset with a
// hard "not a pure function of its spec" error rather than serve from
// diverged replicas.
//
// Datasets are materialized lazily per worker with a generation
// counter: a reconnected or rebalanced worker starts at a new
// generation, and the first query that touches it replays the dataset's
// lineage (Load, then the MapOp chain) before sketching. AddWorker,
// RemoveWorker, and Rebalance reshape the map at runtime; moves bump
// generations so stale state is never consulted.
//
// # Failover, speculation, and dedup
//
// Queries run through engine.SketchReplicated: each group's leaf range
// is dispatched to one replica (healthy first); a retryable failure —
// ErrWorkerLost (connection dead, checksum mismatch, watchdogged frame
// stall) or engine.ErrMissingDataset (worker restarted) — re-dispatches
// the range on the next surviving replica. Ranges whose latency exceeds
// a quantile of completed peers get a speculative duplicate on another
// replica; first result wins. Because summaries are mergeable and
// replicas bit-identical, retries and duplicates are deduplicated at
// merge time by partition range — a group's result is folded exactly
// once, in range order, so the answer under failover is bit-identical
// to the fault-free run (the flipped chaos contract:
// testkit.RunFailover asserts exactly this). When every replica of a
// group is gone the query fails promptly with a clean error — never a
// hang, never a partial answer presented as total.
//
// A background monitor (Options.HealthInterval) pings workers,
// trips a consecutive-failure circuit breaker (Options.FailureThreshold),
// and redials dead workers with capped exponential backoff; recovered
// workers rejoin their group at a fresh generation. Failover telemetry
// — per-worker health plus retry/speculation/loss/reconnect counters —
// is surfaced by Cluster.Stats and /api/status.
package cluster
