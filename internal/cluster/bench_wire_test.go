package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/storage"
	"repro/internal/table"
)

// BenchmarkWire* is the interleaved A/B battery of the binary wire
// codec against the seed's stateful gob stream (reachable here through
// the legacy codec mode; in production gob remains only as the
// per-frame fallback envelope). Recorded in BENCH_wire.json.
//
//	go test -run xxx -bench BenchmarkWire -benchmem ./internal/cluster/

// gobOnlyResult wraps a shipped result in a type without a binary
// codec, forcing the frame onto the MsgGobEnvelope fallback — the
// third A/B leg: stateless per-frame gob, what a naive "make every
// frame self-contained" fix would have cost.
type gobOnlyResult struct{ R sketch.Result }

func init() { gob.Register(&gobOnlyResult{}) }

// benchResults builds representative summaries at display-plausible
// sizes (paper §4.2: summary size follows the rendering, not the data).
func benchHistogram() *sketch.Histogram {
	h := &sketch.Histogram{
		Buckets:     sketch.NumericBuckets(table.KindDouble, -60, 600, 100),
		Counts:      make([]int64, 100),
		Missing:     12345,
		SampleRate:  1,
		SampledRows: 9_700_000,
	}
	for i := range h.Counts {
		h.Counts[i] = int64(1_000_000 / (i + 1))
	}
	return h
}

func benchHist2D() *sketch.Histogram2D {
	h := &sketch.Histogram2D{
		X:          sketch.NumericBuckets(table.KindDouble, -60, 600, 25),
		Y:          sketch.NumericBuckets(table.KindDouble, 0, 3000, 20),
		Counts:     make([]int64, 25*20),
		YOther:     make([]int64, 25),
		SampleRate: 1,
	}
	for i := range h.Counts {
		h.Counts[i] = int64(i * 977 % 100_000)
	}
	return h
}

func benchHeavyHitters() *sketch.HeavyHitters {
	h := &sketch.HeavyHitters{K: 32, Counters: make(map[table.Value]int64, 33), ScannedRows: 10_000_000}
	for i := 0; i < 33; i++ {
		h.Counters[table.StringValue(fmt.Sprintf("ORG%02d", i))] = int64(10_000_000 / (i + 2))
	}
	return h
}

func benchNextK() *sketch.NextKList {
	l := &sketch.NextKList{
		Order: table.Asc("a").Then("b", false),
		K:     25, Before: 100, Total: 100000,
	}
	for i := 0; i < 25; i++ {
		l.Rows = append(l.Rows, table.Row{
			table.DoubleValue(float64(i) * 1.5),
			table.IntValue(int64(i)),
			table.StringValue(fmt.Sprintf("value-%d", i)),
		})
		l.Counts = append(l.Counts, int64(i+1))
	}
	return l
}

func benchTrellis() *sketch.Trellis {
	sk := &sketch.TrellisSketch{
		Group: sketch.NumericBuckets(table.KindDouble, 0, 4, 4),
		X:     sketch.NumericBuckets(table.KindDouble, 0, 10, 10),
		Y:     sketch.NumericBuckets(table.KindDouble, 0, 8, 8),
		Rate:  1,
	}
	tr := sk.Zero().(*sketch.Trellis)
	for _, p := range tr.Plots {
		for i := range p.Counts {
			p.Counts[i] = int64(i * 31)
		}
	}
	return tr
}

// benchCodec runs env through one encode+decode round trip per op on
// the chosen codec, reporting the frame's own bytes.
func benchCodec(b *testing.B, legacy bool, env *Envelope) {
	var buf bytes.Buffer
	newConn := newFrameConn
	if legacy {
		newConn = newLegacyGobFrameConn
	}
	fc := newConn(&buf)
	// Measure the frame size once for SetBytes.
	if err := fc.send(env); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	if _, err := fc.recv(); err != nil {
		b.Fatal(err)
	}
	buf.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fc.send(env); err != nil {
			b.Fatal(err)
		}
		if _, err := fc.recv(); err != nil {
			b.Fatal(err)
		}
		buf.Reset()
	}
}

// BenchmarkWireEncodeDecode is the per-result-type A/B: one full frame
// encoded and decoded per op. These are final-style frames (the delta
// path has its own benchmark below).
func BenchmarkWireEncodeDecode(b *testing.B) {
	cases := []struct {
		name   string
		result sketch.Result
	}{
		{"histogram", benchHistogram()},
		{"hist2d", benchHist2D()},
		{"trellis", benchTrellis()},
		{"heavyhitters", benchHeavyHitters()},
		{"nextk", benchNextK()},
	}
	for _, tc := range cases {
		env := &Envelope{ReqID: 1, Kind: MsgFinal, Result: tc.result, Done: 4, Total: 4}
		envFallback := &Envelope{ReqID: 1, Kind: MsgFinal, Result: &gobOnlyResult{R: tc.result}, Done: 4, Total: 4}
		b.Run(tc.name+"/binary", func(b *testing.B) { benchCodec(b, false, env) })
		b.Run(tc.name+"/gob", func(b *testing.B) { benchCodec(b, true, env) })
		b.Run(tc.name+"/gobframe", func(b *testing.B) { benchCodec(b, false, envFallback) })
	}
}

// addCounts returns a copy of r with per-bucket increments of tick's
// magnitude — the shape of one progress tick's worth of scanning.
func addCounts(r sketch.Result, tick int64) sketch.Result {
	switch h := r.(type) {
	case *sketch.Histogram:
		out := *h
		out.Counts = append([]int64(nil), h.Counts...)
		for i := range out.Counts {
			out.Counts[i] += tick + int64(i%7)*tick/4
		}
		out.SampledRows += tick * int64(len(out.Counts))
		return &out
	case *sketch.Histogram2D:
		out := *h
		out.Counts = append([]int64(nil), h.Counts...)
		for i := range out.Counts {
			out.Counts[i] += tick + int64(i%5)
		}
		out.SampledRows += tick * int64(len(out.Counts))
		return &out
	case *sketch.HeavyHitters:
		out := *h
		out.Counters = make(map[table.Value]int64, len(h.Counters))
		for k, v := range h.Counters {
			out.Counters[k] = v + tick
		}
		out.ScannedRows += tick * int64(len(out.Counters))
		return &out
	}
	return r
}

// benchPartialStream alternates two successive snapshots through one
// request's partial stream, so binary frames after warmup are real
// deltas (per-bucket increments of a progress tick) and gob frames are
// what the seed sent: the whole summary again. wirebytes/op is the
// steady-state frame size.
func benchPartialStream(b *testing.B, legacy, fallback bool, base sketch.Result) {
	next := addCounts(base, 4096)
	wrap := func(r sketch.Result) sketch.Result {
		if fallback {
			return &gobOnlyResult{R: r}
		}
		return r
	}
	envs := [2]*Envelope{
		{ReqID: 7, Kind: MsgPartial, Result: wrap(base), Done: 1, Total: 4},
		{ReqID: 7, Kind: MsgPartial, Result: wrap(next), Done: 2, Total: 4},
	}
	var buf bytes.Buffer
	newConn := newFrameConn
	if legacy {
		newConn = newLegacyGobFrameConn
	}
	fc := newConn(&buf)
	// Warm up: the first frame of a stream is always full.
	var steady int
	for i := 0; i < 4; i++ {
		before := buf.Len()
		if err := fc.send(envs[i%2]); err != nil {
			b.Fatal(err)
		}
		steady = buf.Len() - before
		if _, err := fc.recv(); err != nil {
			b.Fatal(err)
		}
		buf.Reset()
	}
	b.SetBytes(int64(steady))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fc.send(envs[i%2]); err != nil {
			b.Fatal(err)
		}
		if _, err := fc.recv(); err != nil {
			b.Fatal(err)
		}
		buf.Reset()
	}
	b.ReportMetric(float64(steady), "wirebytes/op")
}

// BenchmarkWirePartialStream is the acceptance metric: a request's
// partial stream, one partial frame per op against a warm delta chain
// (binary) versus the stateful gob stream (the seed's behavior — every
// partial re-ships the whole summary). allocs/op is allocations per
// partial frame, encode plus decode; wirebytes/op shows the delta
// shrinkage (heavy hitters has no delta form and ships full frames).
func BenchmarkWirePartialStream(b *testing.B) {
	cases := []struct {
		name   string
		result sketch.Result
	}{
		{"histogram", benchHistogram()},
		{"hist2d", benchHist2D()},
		{"heavyhitters", benchHeavyHitters()},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/binary", func(b *testing.B) { benchPartialStream(b, false, false, tc.result) })
		b.Run(tc.name+"/gob", func(b *testing.B) { benchPartialStream(b, true, false, tc.result) })
		b.Run(tc.name+"/gobframe", func(b *testing.B) { benchPartialStream(b, false, true, tc.result) })
	}
}

// BenchmarkWireSketchTCP is the end-to-end A/B: a full sketch round
// trip — request, partial stream, final — through a real worker over
// TCP, under each codec.
func BenchmarkWireSketchTCP(b *testing.B) {
	run := func(b *testing.B, legacy bool) {
		legacyGobDefault.Store(legacy)
		defer legacyGobDefault.Store(false)
		w := NewWorker(storage.NewLoader(engine.Config{AggregationWindow: 1}, 0))
		addr, err := w.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		cl, err := Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		ctx := context.Background()
		if _, err := cl.Load(ctx, "d", "flights:rows=200000,parts=8"); err != nil {
			b.Fatal(err)
		}
		sk := &sketch.HistogramSketch{Col: "DepDelay", Buckets: sketch.NumericBuckets(table.KindDouble, -60, 600, 100)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Sketch(ctx, "d", sk, func(engine.Partial) {}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := cl.WireStats()
		b.ReportMetric(float64(st.BytesIn)/float64(b.N), "wirebytes/op")
	}
	b.Run("binary", func(b *testing.B) { run(b, false) })
	b.Run("gob", func(b *testing.B) { run(b, true) })
}
