package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/engine"
)

// Options tunes cluster replication and health tracking. The zero value
// is the pre-replication behavior: one replica per partition group, no
// background monitor, no speculation — plus a dial-retry budget so
// Connect survives slow worker startup.
type Options struct {
	// Replication is the number of workers per partition group (R-way).
	// Workers are assigned round-robin: worker i serves group i mod
	// (workers/R). 0 or 1 means no replication. Because partitions are
	// pure functions of their source specs, replicas cost no data
	// movement — each replica of a group loads the identical shard.
	Replication int
	// HealthInterval enables the background monitor: every interval,
	// live workers are pinged and down workers redialed (with capped
	// exponential backoff). 0 disables the monitor; down workers are
	// then revived only by explicit ReconnectWorker calls.
	HealthInterval time.Duration
	// FailureThreshold is the circuit breaker: this many consecutive
	// transport failures mark a worker down (0 = 3). A dead connection
	// trips it immediately regardless of the count.
	FailureThreshold int
	// DialRetryBudget bounds transient-dial retries in Connect,
	// AddWorker, and reconnects (0 = 3s, negative = single attempt).
	DialRetryBudget time.Duration
	// FrameTimeout is the mid-frame read watchdog on root-side
	// connections (0 = 10s, negative = disabled).
	FrameTimeout time.Duration
	// SpecFactor and SpecMinDelay tune speculative re-execution of
	// straggling partition groups (see engine.FailoverOptions).
	// SpecFactor 0 disables speculation.
	SpecFactor   float64
	SpecMinDelay time.Duration
}

func (o Options) replication() int {
	if o.Replication < 1 {
		return 1
	}
	return o.Replication
}

func (o Options) failureThreshold() int {
	if o.FailureThreshold <= 0 {
		return 3
	}
	return o.FailureThreshold
}

func (o Options) dialBudget() time.Duration {
	switch {
	case o.DialRetryBudget < 0:
		return 0
	case o.DialRetryBudget == 0:
		return 3 * time.Second
	default:
		return o.DialRetryBudget
	}
}

// slot is the root's health record for one worker: its current
// connection, liveness state, and the generation counter that
// invalidates per-worker dataset materializations whenever the
// connection (or the worker's group assignment) changes.
type slot struct {
	addr string

	mu          sync.Mutex
	group       int
	cl          *Client
	gen         uint64 // bumped on (re)connect and group moves
	down        bool
	consecFails int
	reconnects  int64
	lastPingNS  int64
	backoff     time.Duration
	nextRedial  time.Time
	probing     bool // a monitor probe/redial is in flight
}

func (s *slot) groupNow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.group
}

// liveClient returns the slot's usable connection and its generation,
// or an ErrWorkerLost-wrapped error when the worker is down. It never
// dials: within a query, failover targets only workers that are already
// connected — reviving dead ones is the monitor's job between queries,
// so a query against a fully-dead group fails cleanly instead of
// blocking on reconnect attempts.
func (s *slot) liveClient() (*Client, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down || s.cl == nil || s.cl.Dead() {
		return nil, 0, fmt.Errorf("%w: %s is down", ErrWorkerLost, s.addr)
	}
	return s.cl, s.gen, nil
}

func (s *slot) healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.down && s.cl != nil && !s.cl.Dead()
}

// noteOutcome feeds one request outcome into the slot's circuit
// breaker. Only transport-level failures count — a deterministic worker
// error says the query is wrong, not the worker.
func (c *Cluster) noteOutcome(s *slot, err error) {
	if err == nil {
		s.mu.Lock()
		s.consecFails = 0
		s.mu.Unlock()
		return
	}
	if !errors.Is(err, ErrWorkerLost) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFails++
	dead := s.cl == nil || s.cl.Dead()
	if !s.down && (dead || s.consecFails >= c.opts.failureThreshold()) {
		s.down = true
		if s.cl != nil {
			s.cl.Close()
		}
		s.backoff = 0
		s.nextRedial = time.Time{} // first redial may happen immediately
	}
}

// ReconnectWorker redials a (down or live) worker immediately, swapping
// in a fresh connection and bumping the slot's generation so datasets
// re-materialize lazily on next use. The health monitor calls this with
// backoff; tests and operators may call it directly.
func (c *Cluster) ReconnectWorker(addr string) error {
	s := c.slotByAddr(addr)
	if s == nil {
		return fmt.Errorf("cluster: no worker %s", addr)
	}
	conn, err := dialRetry(c.tr, addr, c.opts.dialBudget())
	if err != nil {
		return fmt.Errorf("cluster: reconnecting %s: %w", addr, err)
	}
	cl := newClientConn(conn, addr, c.opts.FrameTimeout)
	s.mu.Lock()
	if s.cl != nil {
		s.cl.Close()
	}
	s.cl = cl
	s.gen++
	s.down = false
	s.consecFails = 0
	s.backoff = 0
	s.reconnects++
	s.mu.Unlock()
	c.reconnects.Add(1)
	return nil
}

func (c *Cluster) slotByAddr(addr string) *slot {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.slots {
		if s.addr == addr {
			return s
		}
	}
	return nil
}

func (c *Cluster) snapshotSlots() []*slot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*slot(nil), c.slots...)
}

// monitor is the background health loop: ping live workers, redial down
// ones under capped exponential backoff with jitter.
func (c *Cluster) monitor(interval time.Duration) {
	defer c.monitorWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopMonitor:
			return
		case <-t.C:
			c.healthTick(interval)
		}
	}
}

func (c *Cluster) healthTick(interval time.Duration) {
	for _, s := range c.snapshotSlots() {
		s.mu.Lock()
		if s.probing {
			s.mu.Unlock()
			continue
		}
		down := s.down || s.cl == nil || s.cl.Dead()
		if down && time.Now().Before(s.nextRedial) {
			s.mu.Unlock()
			continue
		}
		cl := s.cl
		s.probing = true
		s.mu.Unlock()
		go func(s *slot, down bool, cl *Client) {
			defer func() {
				s.mu.Lock()
				s.probing = false
				s.mu.Unlock()
			}()
			if down {
				if err := c.ReconnectWorker(s.addr); err != nil {
					s.mu.Lock()
					if s.backoff == 0 {
						s.backoff = interval
					} else if s.backoff < 30*time.Second {
						s.backoff *= 2
					}
					s.nextRedial = time.Now().Add(s.backoff + time.Duration(rand.Int64N(int64(s.backoff/2)+1)))
					s.mu.Unlock()
				}
				return
			}
			timeout := min(max(interval, 50*time.Millisecond), 2*time.Second)
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			start := time.Now()
			err := cl.Ping(ctx)
			cancel()
			if err == nil {
				s.mu.Lock()
				s.lastPingNS = time.Since(start).Nanoseconds()
				s.mu.Unlock()
				c.noteOutcome(s, nil)
				return
			}
			c.noteOutcome(s, fmt.Errorf("%w: ping %s: %v", ErrWorkerLost, s.addr, err))
		}(s, down, cl)
	}
}

// AddWorker dials a new worker and assigns it to the partition group
// with the fewest replicas. Existing datasets materialize on it lazily,
// the first time a query routes to it.
func (c *Cluster) AddWorker(addr string) error {
	conn, err := dialRetry(c.tr, addr, c.opts.dialBudget())
	if err != nil {
		return fmt.Errorf("cluster: connecting %s: %w", addr, err)
	}
	cl := newClientConn(conn, addr, c.opts.FrameTimeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.slots {
		if s.addr == addr {
			cl.Close()
			return fmt.Errorf("cluster: worker %s already connected", addr)
		}
	}
	counts := make([]int, c.nGroups)
	for _, s := range c.slots {
		counts[s.groupNow()]++
	}
	g := 0
	for i, n := range counts {
		if n < counts[g] {
			g = i
		}
	}
	c.slots = append(c.slots, &slot{addr: addr, group: g, cl: cl, gen: 1})
	return nil
}

// RemoveWorker disconnects a worker and removes it from the replica
// map. Queries in flight on it fail over to its group's survivors.
func (c *Cluster) RemoveWorker(addr string) error {
	c.mu.Lock()
	var s *slot
	for i, cand := range c.slots {
		if cand.addr == addr {
			s = cand
			c.slots = append(c.slots[:i], c.slots[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	if s == nil {
		return fmt.Errorf("cluster: no worker %s", addr)
	}
	s.mu.Lock()
	s.down = true
	if s.cl != nil {
		s.cl.Close()
	}
	s.mu.Unlock()
	return nil
}

// Rebalance evens replica counts across partition groups after joins
// and leaves, moving workers from over- to under-replicated groups. A
// moved worker's generation is bumped, so it reloads its new group's
// shard lazily (loads are pure functions of the spec — no data moves
// through the root). Returns the number of workers moved.
func (c *Cluster) Rebalance() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	moved := 0
	for {
		counts := make([]int, c.nGroups)
		for _, s := range c.slots {
			counts[s.groupNow()]++
		}
		gmax, gmin := 0, 0
		for g, n := range counts {
			if n > counts[gmax] {
				gmax = g
			}
			if n < counts[gmin] {
				gmin = g
			}
		}
		if counts[gmax]-counts[gmin] <= 1 {
			return moved
		}
		// Move the most recently added worker of the crowded group: the
		// earliest workers stay primaries, keeping fault-free assignment
		// stable.
		for i := len(c.slots) - 1; i >= 0; i-- {
			s := c.slots[i]
			s.mu.Lock()
			if s.group == gmax {
				s.group = gmin
				s.gen++
				s.mu.Unlock()
				moved++
				break
			}
			s.mu.Unlock()
		}
	}
}

// WorkerHealth is one worker's health snapshot in Stats.
type WorkerHealth struct {
	Addr                string
	Group               int
	State               string // "up" or "down"
	ConsecutiveFailures int
	Reconnects          int64
	Generation          uint64
	LastPingNS          int64
}

// Stats is the cluster's replication and failover telemetry, surfaced
// through /api/status next to the wire counters.
type Stats struct {
	Groups      int
	Replication int
	Workers     []WorkerHealth

	// Retries counts partition ranges re-dispatched after a replica
	// failure; SpecLaunches/SpecWins count speculative re-executions of
	// stragglers and how many delivered first; GroupsLost counts ranges
	// whose every replica failed (each one a cleanly-errored query);
	// Reconnects counts successful worker redials.
	Retries      int64
	SpecLaunches int64
	SpecWins     int64
	GroupsLost   int64
	Reconnects   int64
}

// Stats returns a snapshot of per-worker health and failover counters.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Groups:       c.nGroups,
		Replication:  c.opts.replication(),
		Retries:      c.retries.Load(),
		SpecLaunches: c.specLaunches.Load(),
		SpecWins:     c.specWins.Load(),
		GroupsLost:   c.groupsLost.Load(),
		Reconnects:   c.reconnects.Load(),
	}
	for _, s := range c.snapshotSlots() {
		s.mu.Lock()
		state := "up"
		if s.down || s.cl == nil || s.cl.Dead() {
			state = "down"
		}
		st.Workers = append(st.Workers, WorkerHealth{
			Addr:                s.addr,
			Group:               s.group,
			State:               state,
			ConsecutiveFailures: s.consecFails,
			Reconnects:          s.reconnects,
			Generation:          s.gen,
			LastPingNS:          s.lastPingNS,
		})
		s.mu.Unlock()
	}
	return st
}

// recordEvent folds engine failover telemetry into the counters.
func (c *Cluster) recordEvent(e engine.FailoverEvent) {
	switch e.Kind {
	case engine.EventFailover:
		c.retries.Add(1)
	case engine.EventSpeculate:
		c.specLaunches.Add(1)
	case engine.EventSpecWin:
		c.specWins.Add(1)
	case engine.EventGroupLost:
		c.groupsLost.Add(1)
	}
}
