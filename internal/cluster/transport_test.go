package cluster

import (
	"context"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/storage"
	"repro/internal/table"
)

// TestFaultConnNonDestructive streams frames through a fault connection
// with every non-destructive byte-level fault enabled and verifies the
// frame codec still sees the exact sent sequence — no loss, no
// reordering, no corruption.
func TestFaultConnNonDestructive(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	const n = 40
	go func() {
		fc := newFrameConn(a)
		for i := 0; i < n; i++ {
			if err := fc.send(&Envelope{ReqID: uint64(i), Kind: MsgPartial, Done: i, Total: n}); err != nil {
				return
			}
		}
	}()
	fc := newFrameConn(NewFaultConn(b, FaultScript{
		Seed:      7,
		DelayProb: 0.3, MaxDelay: 200 * time.Microsecond,
		StallProb: 0.5, Stall: 200 * time.Microsecond,
	}))
	for want := uint64(0); want < n; want++ {
		env, err := fc.recv()
		if err != nil {
			t.Fatalf("recv after %d frames: %v", want, err)
		}
		if env.ReqID != want {
			t.Fatalf("frame %d arrived while expecting %d", env.ReqID, want)
		}
	}
}

// TestFaultConnCut verifies a scripted mid-stream disconnect surfaces
// as a read error within the frame budget.
func TestFaultConnCut(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	go func() {
		fc := newFrameConn(a)
		for i := 0; ; i++ {
			if err := fc.send(&Envelope{ReqID: uint64(i), Kind: MsgPartial}); err != nil {
				return
			}
		}
	}()
	fc := newFrameConn(NewFaultConn(b, FaultScript{CutAfterFrames: 3}))
	for i := 0; i < 3; i++ {
		if _, err := fc.recv(); err != nil {
			return // cut surfaced
		}
	}
	t.Fatal("connection survived past CutAfterFrames")
}

// TestReadLoopNotWedgedBySlowPartialConsumer pins the multiplexing
// liveness fix: a consumer stalled inside its partial callback — with
// its request's buffer full and a completion frame queued behind it —
// must not wedge the connection's single reader. The stalled callback
// here waits on a second request (Ping) over the same connection; the
// ping can only succeed if the reader keeps dispatching past the full
// buffer.
func TestReadLoopNotWedgedBySlowPartialConsumer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A scripted worker: floods 100 partials plus a final for any
	// sketch request (overrunning the client's 64-slot buffer), and
	// answers pings.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fc := newFrameConn(conn)
		for {
			env, err := fc.recv()
			if err != nil {
				return
			}
			switch env.Kind {
			case MsgSketch:
				go func(id uint64) {
					for i := 0; i < 100; i++ {
						_ = fc.send(&Envelope{ReqID: id, Kind: MsgPartial, Result: &sketch.DataRange{}, Done: i, Total: 100})
					}
					_ = fc.send(&Envelope{ReqID: id, Kind: MsgFinal, Result: &sketch.DataRange{Present: 1}, Done: 100, Total: 100})
				}(env.ReqID)
			case MsgPing:
				_ = fc.send(&Envelope{ReqID: env.ReqID, Kind: MsgOK})
			}
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pinged := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		_, err := cl.Sketch(context.Background(), "any", &sketch.RangeSketch{Col: "c"}, func(engine.Partial) {
			once.Do(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := cl.Ping(ctx); err == nil {
					close(pinged)
				}
			})
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("connection reader wedged: sketch never completed")
	}
	select {
	case <-pinged:
	default:
		t.Fatal("ping starved behind a stalled partial consumer")
	}
}

// TestFaultTransportEndToEnd runs a real worker query through a
// delaying, stalling transport with duplicated partials and demands the
// bit-identical fault-free result: non-destructive faults must be
// invisible to the protocol.
func TestFaultTransportEndToEnd(t *testing.T) {
	cfg := engine.Config{AggregationWindow: time.Millisecond}
	w := NewWorker(storage.NewLoader(cfg, 0))
	w.SetDuplicatePartials(0.5, 3)
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	clean, err := Connect([]string{addr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clean.Close)
	faulty, err := ConnectTransport(FaultTransport{Script: FaultScript{
		Seed:      11,
		DelayProb: 0.2, MaxDelay: time.Millisecond,
		StallProb: 0.2, Stall: time.Millisecond,
	}}, []string{addr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faulty.Close)

	ctx := context.Background()
	sk := &sketch.HistogramSketch{Col: "Distance", Buckets: sketch.NumericBuckets(table.KindDouble, 0, 3000, 16)}
	if _, err := clean.Clients()[0].Load(ctx, "fl", "flights:rows=20000,parts=8,seed=5"); err != nil {
		t.Fatal(err)
	}
	want, err := clean.Clients()[0].Sketch(ctx, "fl", sk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Clients()[0].Load(ctx, "fl2", "flights:rows=20000,parts=8,seed=5"); err != nil {
		t.Fatal(err)
	}
	var partials int
	got, err := faulty.Clients()[0].Sketch(ctx, "fl2", sk, func(engine.Partial) { partials++ })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("faulted transport changed the summary\n got %+v\nwant %+v", got, want)
	}
}
