package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Worker is a Hillview worker server: it owns a soft-state registry of
// datasets (loaded from its local storage or derived by map operations)
// and executes sketches over them, streaming partial results back.
// Workers hold no persistent state — after a restart, the root's redo
// log rebuilds everything (paper §5.8: "worker nodes are stateless, so
// restarting the node after a failure is equivalent to deleting all
// cached datasets").
type Worker struct {
	loader engine.Loader

	// Graceful shutdown: active tracks in-flight requests; draining
	// flips when Drain starts, after which new requests are refused (the
	// root's failover retries them on a replica).
	active   sync.WaitGroup
	inFlight atomic.Int64
	draining atomic.Bool

	mu       sync.Mutex
	datasets map[string]engine.IDataSet
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wrap     func(net.Conn) net.Conn
	dupProb  float64
	dupRNG   *rand.Rand
	logf     func(format string, args ...any)
}

// NewWorker builds a worker that loads data through loader.
func NewWorker(loader engine.Loader) *Worker {
	return &Worker{
		loader:   loader,
		datasets: make(map[string]engine.IDataSet),
		conns:    make(map[net.Conn]struct{}),
		logf:     func(string, ...any) {},
	}
}

// SetLogf installs a diagnostic logger (e.g. log.Printf).
func (w *Worker) SetLogf(f func(string, ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	w.logf = f
}

// SetConnWrapper interposes f on every subsequently accepted
// connection — the worker-side half of the transport seam. The chaos
// harness wraps accepted connections in NewFaultConn so the root→worker
// stream (requests, cancels) suffers the same scripted faults the
// root-side FaultTransport applies to the worker→root stream.
func (w *Worker) SetConnWrapper(f func(net.Conn) net.Conn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wrap = f
}

// SetDuplicatePartials makes the worker re-send each streamed partial
// result with the given probability (deterministic in seed) — the
// duplicated-partial fault of the chaos harness, modeling a retrying
// emission layer. The duplicate is re-framed (it gets its own sequence
// number, so under delta encoding it is a zero delta); the protocol
// tolerates it because partials are cumulative snapshots: the root may
// apply any partial any number of times. Byte-identical frame replay is
// the harsher, transport-level cousin — FaultScript.DupFrameProb —
// which the stateless codec also absorbs.
func (w *Worker) SetDuplicatePartials(prob float64, seed uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dupProb = prob
	w.dupRNG = rand.New(rand.NewPCG(seed, seed^0xa54ff53a5f1d36f1))
}

// dupPartial decides whether to re-send one partial.
func (w *Worker) dupPartial() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dupRNG != nil && w.dupRNG.Float64() < w.dupProb
}

// Crash simulates the worker process dying mid-work: every live
// connection is hard-closed (in-flight requests on the root fail with a
// connection error, exactly as with a real crash) and all soft state is
// dropped. The listener stays open, playing the role of a supervisor
// restarting the process with empty state (paper §5.8: workers are
// stateless, so restart equals deleting all cached datasets).
func (w *Worker) Crash() {
	w.mu.Lock()
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.datasets = make(map[string]engine.IDataSet)
	w.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// DropAll discards all soft state, simulating a worker restart.
func (w *Worker) DropAll() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.datasets = make(map[string]engine.IDataSet)
}

// NumDatasets returns the registry size (for tests).
func (w *Worker) NumDatasets() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.datasets)
}

// Listen starts accepting on addr ("host:0" picks a free port) and
// returns the bound address.
func (w *Worker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	w.mu.Lock()
	w.ln = ln
	w.mu.Unlock()
	go w.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops accepting connections.
func (w *Worker) Close() error {
	w.mu.Lock()
	ln := w.ln
	w.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// ActiveRequests returns the number of requests executing now.
func (w *Worker) ActiveRequests() int64 { return w.inFlight.Load() }

// Drain performs a graceful shutdown: the listener closes, requests
// arriving on live connections are refused (the root's failover
// retries them on a replica), in-flight requests get up to timeout to
// finish, and then every connection is closed. A nil return means the
// worker went quiet; an error means the timeout cut work off.
func (w *Worker) Drain(timeout time.Duration) error {
	w.draining.Store(true)
	w.Close()
	done := make(chan struct{})
	go func() {
		w.active.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("cluster: drain timed out after %v with %d requests in flight", timeout, w.ActiveRequests())
	}
	w.mu.Lock()
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (w *Worker) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				w.logf("cluster worker: accept: %v", err)
			}
			return
		}
		w.mu.Lock()
		if w.wrap != nil {
			conn = w.wrap(conn)
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

// serveConn handles one root connection: a reader loop dispatches each
// request to its own goroutine; cancellation frames are handled inline
// by the reader so they bypass any queued work (paper §5.3: "a high
// priority cancellation message that bypasses the queuing mechanisms").
func (w *Worker) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	fc := newFrameConn(conn)
	var (
		mu      sync.Mutex
		cancels = make(map[uint64]context.CancelFunc)
	)
	for {
		env, err := fc.recv()
		if err != nil {
			return // connection closed
		}
		if env.Kind == MsgCancel {
			mu.Lock()
			if cancel, ok := cancels[env.ReqID]; ok {
				cancel()
			}
			mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		mu.Lock()
		if _, active := cancels[env.ReqID]; active {
			// A request ID already in flight is a transport-level replay
			// (the chaos harness duplicates whole frames byte-for-byte;
			// the stateless codec makes that decodable). Requests are
			// idempotent but a sketch replay would interleave a second
			// partial stream under the same ID, so dedup here.
			mu.Unlock()
			cancel()
			continue
		}
		cancels[env.ReqID] = cancel
		mu.Unlock()
		if w.draining.Load() {
			// Refuse work arriving after the drain began; replicas carry it.
			mu.Lock()
			delete(cancels, env.ReqID)
			mu.Unlock()
			cancel()
			if err := fc.send(&Envelope{Kind: MsgError, ReqID: env.ReqID, Err: "cluster: worker is draining for shutdown"}); err != nil {
				w.logf("cluster worker: send: %v", err)
			}
			continue
		}
		w.active.Add(1)
		w.inFlight.Add(1)
		go func(env *Envelope) {
			defer func() {
				mu.Lock()
				delete(cancels, env.ReqID)
				mu.Unlock()
				cancel()
				w.inFlight.Add(-1)
				w.active.Done()
			}()
			// A panic while serving one request (a buggy sketch summarize,
			// a malformed operand) must not kill the worker process — the
			// worker is one process serving every query of every root.
			// Convert it to this request's error reply; the engine treats
			// it as non-retryable, so only the offending query fails.
			defer func() {
				if pe := engine.CapturePanic(recover()); pe != nil {
					w.logf("cluster worker: request %d: %v\n%s", env.ReqID, pe, pe.Stack)
					reply := &Envelope{Kind: MsgError, ReqID: env.ReqID, Err: pe.Error()}
					if err := fc.send(reply); err != nil {
						w.logf("cluster worker: send: %v", err)
					}
				}
			}()
			w.handle(ctx, fc, env)
		}(env)
	}
}

func (w *Worker) handle(ctx context.Context, fc *frameConn, env *Envelope) {
	reply := func(out *Envelope) {
		out.ReqID = env.ReqID
		if err := fc.send(out); err != nil {
			w.logf("cluster worker: send: %v", err)
		}
	}
	fail := func(err error) {
		reply(&Envelope{
			Kind:       MsgError,
			Err:        err.Error(),
			ErrMissing: errors.Is(err, engine.ErrMissingDataset),
		})
	}

	switch env.Kind {
	case MsgPing:
		reply(&Envelope{Kind: MsgOK})

	case MsgLoad:
		ds, err := w.loader(env.DatasetID, env.Source)
		if err != nil {
			fail(err)
			return
		}
		w.mu.Lock()
		w.datasets[env.DatasetID] = ds // idempotent: replay overwrites
		w.mu.Unlock()
		reply(&Envelope{Kind: MsgOK, NumLeaves: ds.NumLeaves()})

	case MsgMap:
		parent, err := w.get(env.DatasetID)
		if err != nil {
			fail(err)
			return
		}
		ds, err := parent.Map(env.Op, env.NewID)
		if err != nil {
			fail(err)
			return
		}
		w.mu.Lock()
		w.datasets[env.NewID] = ds
		w.mu.Unlock()
		reply(&Envelope{Kind: MsgOK, NumLeaves: ds.NumLeaves()})

	case MsgSketch:
		ds, err := w.get(env.DatasetID)
		if err != nil {
			fail(err)
			return
		}
		// A traced request gets a worker-side trace: the engine records
		// its scan/merge spans into it through the context, and the
		// whole breakdown ships back on the final frame for the root to
		// stitch under its wire.call span.
		var tr *obs.Trace
		if env.TraceID != "" {
			tr = obs.NewTrace(env.TraceID)
			ctx = obs.WithTrace(ctx, tr)
		}
		var onPartial engine.PartialFunc
		if !env.NoPartials {
			onPartial = func(p engine.Partial) {
				reply(&Envelope{Kind: MsgPartial, Result: p.Result, Done: p.Done, Total: p.Total})
				if w.dupPartial() {
					reply(&Envelope{Kind: MsgPartial, Result: p.Result, Done: p.Done, Total: p.Total})
				}
			}
		}
		sp := tr.StartSpan("worker.sketch")
		res, err := ds.Sketch(ctx, env.Sketch, onPartial)
		sp.End()
		if err != nil {
			fail(err)
			return
		}
		reply(&Envelope{
			Kind: MsgFinal, Result: res, Done: ds.NumLeaves(), Total: ds.NumLeaves(),
			TraceID: env.TraceID, Spans: tr.Spans(),
		})

	case MsgDrop:
		w.mu.Lock()
		delete(w.datasets, env.DatasetID)
		w.mu.Unlock()
		reply(&Envelope{Kind: MsgOK})

	default:
		fail(fmt.Errorf("cluster: unknown request kind %d", env.Kind))
	}
}

func (w *Worker) get(id string) (engine.IDataSet, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ds, ok := w.datasets[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q on this worker", engine.ErrMissingDataset, id)
	}
	return ds, nil
}
