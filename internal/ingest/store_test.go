package ingest

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/table"
)

// TestStoreOpenAllFreshRoot pins the first-boot path: OpenAll against a
// root directory that does not exist yet must create it and report no
// datasets, so a server started with an empty -ingest-dir comes up
// writable instead of failing.
func TestStoreOpenAllFreshRoot(t *testing.T) {
	root := filepath.Join(t.TempDir(), "not", "yet", "created")
	st := NewStore(root, StoreConfig{})
	names, err := st.OpenAll()
	if err != nil {
		t.Fatalf("OpenAll on fresh root: %v", err)
	}
	if len(names) != 0 {
		t.Fatalf("fresh root reported datasets: %v", names)
	}
	if fi, err := os.Stat(root); err != nil || !fi.IsDir() {
		t.Fatalf("OpenAll did not create the root: %v", err)
	}

	// The store is immediately usable: create, append, seal, rediscover.
	schema := &table.Schema{Columns: []table.ColumnDesc{{Name: "v", Kind: table.KindInt}}}
	d, err := st.Create("events", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRows(context.Background(), []table.Row{{table.IntValue(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(root, StoreConfig{})
	names, err = st2.OpenAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "events" {
		t.Fatalf("reopened store found %v, want [events]", names)
	}
}
