package ingest

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
)

// MemFS is a flat in-memory FS. It backs the crash harness: a
// simulated post-crash disk image is a MemFS, and recovery runs against
// it exactly as it would against the real filesystem. All operations
// are immediately "durable" (there is no cache layer to lose), so Sync
// and SyncDir are no-ops.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte), dirs: make(map[string]bool)}
}

type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("ingest: write to closed file %q", f.name)
	}
	data, ok := f.fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("ingest: write to removed file %q", f.name)
	}
	f.fs.files[f.name] = append(data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = []byte{}
	return &memFile{fs: m, name: name}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = []byte{}
	}
	return &memFile{fs: m, name: name}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldName]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldName, Err: fs.ErrNotExist}
	}
	delete(m.files, oldName)
	m.files[newName] = data
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(data)) {
		return fmt.Errorf("ingest: truncate %q to %d bytes (have %d)", name, size, len(data))
	}
	m.files[name] = data[:size]
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	if len(names) == 0 && !m.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// ListDirs lists the subdirectory names under dir (DirLister).
func (m *MemFS) ListDirs(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]bool{}
	add := func(d string) {
		for d != "." && d != "/" && d != "" {
			parent := filepath.Dir(d)
			if parent == dir {
				seen[filepath.Base(d)] = true
				return
			}
			d = parent
		}
	}
	for path := range m.files {
		add(filepath.Dir(path))
	}
	for d := range m.dirs {
		add(d)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS.
func (m *MemFS) SyncDir(dir string) error { return nil }

// put installs a file directly (crash-image construction).
func (m *MemFS) put(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = data
	m.dirs[filepath.Dir(name)] = true
}
