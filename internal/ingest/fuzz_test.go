package ingest

import (
	"testing"
)

// FuzzManifest hammers the hardened manifest reader with arbitrary
// bytes. The invariants under fuzz:
//
//   - never panic, never over-allocate (maxRecordLen bounds);
//   - validLen stays within the image and past the header;
//   - recovered seals are contiguous 1..n with matching names;
//   - the scan is idempotent under its own truncation: re-scanning
//     data[:validLen] yields the identical live set with torn=false —
//     which is exactly what recovery relies on when it truncates a torn
//     manifest and reopens it.
//
// Seed corpus lives in testdata/fuzz/FuzzManifest (checked in; CI
// replays it on every run, and the ingest job additionally runs a short
// live fuzz).
func FuzzManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add(manifestMagic[:])
	f.Add(buildManifest(testSchema))
	full := buildManifest(testSchema, mkSeals(3)...)
	f.Add(full)
	f.Add(full[:len(full)-5])
	mut := append([]byte(nil), full...)
	mut[len(manifestMagic)+6] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := scanManifest(data)
		if err != nil {
			return // no dataset: nothing else to hold
		}
		if v.validLen < int64(len(manifestMagic)) || v.validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [header, len]", v.validLen)
		}
		if v.schema == nil {
			t.Fatal("nil schema without error")
		}
		for i, rec := range v.seals {
			if rec.Seq != uint64(i+1) || rec.Name != partName(rec.Seq) {
				t.Fatalf("seal %d not contiguous/canonical: %+v", i, rec)
			}
		}
		v2, err := scanManifest(data[:v.validLen])
		if err != nil {
			t.Fatalf("re-scan of valid prefix failed: %v", err)
		}
		if v2.torn || v2.validLen != v.validLen || len(v2.seals) != len(v.seals) {
			t.Fatalf("truncation not idempotent: %+v vs %+v", v2, v)
		}
		for i := range v.seals {
			if v2.seals[i] != v.seals[i] {
				t.Fatalf("seal %d changed across re-scan", i)
			}
		}
	})
}
