package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"

	"repro/internal/table"
)

// The manifest is the append-only log that defines a dataset: nothing
// on disk is part of the live dataset unless a valid manifest record
// says so. Layout:
//
//	header   8 bytes   "HVMF" 0x01 0x00 0x00 0x00
//	record   uint32 LE payload length
//	         payload
//	         uint32 LE CRC32-C of the payload
//
// Payloads (all integers uvarint unless noted):
//
//	kind 1, schema   ncols, then per column: len(name), name, kind byte.
//	                 Written once, immediately after the header, before
//	                 any seal — it fixes the dataset schema forever.
//	kind 2, seal     seq, rows, len(name), name. The named partition
//	                 file (already renamed into place and dir-synced)
//	                 joins the live set as sealed partition seq.
//
// Recovery scans records in order and stops at the first torn or
// corrupt one — truncated length field, length outside bounds, CRC
// mismatch, unknown kind, malformed payload — truncating the manifest
// file back to the last valid boundary. Because a seal record is
// appended (and fsynced) only after its partition file is fully
// durable, truncation can only ever drop un-acknowledged seals, and a
// partition file without a surviving record is garbage-collected.
var manifestMagic = [8]byte{'H', 'V', 'M', 'F', 1, 0, 0, 0}

const (
	recSchema byte = 1
	recSeal   byte = 2

	// maxRecordLen bounds one record payload; a crafted length field
	// cannot make the reader allocate more than this.
	maxRecordLen = 1 << 20
)

var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrNoDataset reports that a directory holds no (recoverable) ingest
// dataset: no manifest, or one whose header/schema record never became
// durable — which also proves no partition was ever sealed.
var ErrNoDataset = errors.New("ingest: no dataset")

// sealRecord is one decoded seal entry.
type sealRecord struct {
	Seq  uint64
	Rows int
	Name string
}

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// frameRecord wraps a payload in the length/CRC framing.
func frameRecord(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+8)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, manifestCRC))
}

// encodeSchemaRecord renders the schema payload.
func encodeSchemaRecord(schema *table.Schema) []byte {
	p := []byte{recSchema}
	p = appendUvarint(p, uint64(schema.NumColumns()))
	for _, cd := range schema.Columns {
		p = appendUvarint(p, uint64(len(cd.Name)))
		p = append(p, cd.Name...)
		p = append(p, byte(cd.Kind))
	}
	return p
}

// encodeSealRecord renders a seal payload.
func encodeSealRecord(r sealRecord) []byte {
	p := []byte{recSeal}
	p = appendUvarint(p, r.Seq)
	p = appendUvarint(p, uint64(r.Rows))
	p = appendUvarint(p, uint64(len(r.Name)))
	return append(p, r.Name...)
}

// manifestView is the result of one scan: the decoded prefix of valid
// records and where it ends.
type manifestView struct {
	schema   *table.Schema
	seals    []sealRecord
	validLen int64 // bytes of header + valid records
	torn     bool  // bytes beyond validLen exist (torn/corrupt tail)
}

// scanManifest decodes a manifest image. It is the hardened reader: any
// byte string must either decode to a (possibly empty) valid prefix or
// return ErrNoDataset — never panic, never allocate beyond bounds. An
// image whose header or schema record is damaged returns ErrNoDataset:
// both are written and fsynced before the first seal can exist, so a
// damaged prefix proves the dataset held no data.
func scanManifest(data []byte) (manifestView, error) {
	v := manifestView{}
	if len(data) < len(manifestMagic) {
		return v, fmt.Errorf("%w: manifest header torn (%d bytes)", ErrNoDataset, len(data))
	}
	for i, b := range manifestMagic {
		if data[i] != b {
			return v, fmt.Errorf("%w: bad manifest magic", ErrNoDataset)
		}
	}
	off := int64(len(manifestMagic))
	v.validLen = off
scan:
	for {
		payload, next, ok := nextRecord(data, off)
		if !ok {
			v.torn = int64(len(data)) > v.validLen
			break
		}
		kind := payload[0]
		switch {
		case kind == recSchema && v.schema == nil && len(v.seals) == 0:
			schema, err := decodeSchemaPayload(payload[1:])
			if err != nil {
				v.torn = true
				break scan
			}
			v.schema = schema
		case kind == recSeal && v.schema != nil:
			// The writer allocates seq serially, so a valid prefix is
			// exactly 1..n; anything else is corruption.
			rec, err := decodeSealPayload(payload[1:])
			if err != nil || rec.Seq != uint64(len(v.seals))+1 {
				v.torn = true
				break scan
			}
			v.seals = append(v.seals, rec)
		default:
			// Unknown kind, duplicate schema, or a seal before the schema:
			// corrupt from here on.
			v.torn = true
			break scan
		}
		off = next
		v.validLen = off
	}
	// Every exit funnels through here: an image with no decodable
	// schema record — however its tail looked — holds no dataset.
	if v.schema == nil {
		return manifestView{}, fmt.Errorf("%w: manifest has no schema record", ErrNoDataset)
	}
	return v, nil
}

// nextRecord decodes the record framing at off; ok is false when the
// bytes from off do not form a complete, CRC-valid, non-empty record.
func nextRecord(data []byte, off int64) (payload []byte, next int64, ok bool) {
	rest := data[off:]
	if len(rest) < 4 {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(rest))
	if n == 0 || n > maxRecordLen || int64(len(rest)) < 4+n+4 {
		return nil, 0, false
	}
	payload = rest[4 : 4+n]
	want := binary.LittleEndian.Uint32(rest[4+n:])
	if crc32.Checksum(payload, manifestCRC) != want {
		return nil, 0, false
	}
	return payload, off + 4 + n + 4, true
}

// decodeSchemaPayload parses the schema record body.
func decodeSchemaPayload(p []byte) (*table.Schema, error) {
	ncols, p, err := readUvarint(p)
	if err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > 4096 {
		return nil, fmt.Errorf("ingest: %d schema columns out of range", ncols)
	}
	cols := make([]table.ColumnDesc, 0, ncols)
	seen := map[string]bool{}
	for i := uint64(0); i < ncols; i++ {
		var name string
		name, p, err = readString(p)
		if err != nil {
			return nil, err
		}
		if len(p) < 1 {
			return nil, fmt.Errorf("ingest: schema record truncated")
		}
		kind := table.Kind(p[0])
		p = p[1:]
		switch kind {
		case table.KindInt, table.KindDouble, table.KindString, table.KindDate:
		default:
			return nil, fmt.Errorf("ingest: schema column %q has invalid kind %d", name, kind)
		}
		if name == "" || seen[name] {
			return nil, fmt.Errorf("ingest: schema column name %q empty or duplicate", name)
		}
		seen[name] = true
		cols = append(cols, table.ColumnDesc{Name: name, Kind: kind})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("ingest: %d trailing bytes in schema record", len(p))
	}
	return table.NewSchema(cols...), nil
}

// decodeSealPayload parses a seal record body.
func decodeSealPayload(p []byte) (sealRecord, error) {
	var (
		rec sealRecord
		err error
	)
	rec.Seq, p, err = readUvarint(p)
	if err != nil {
		return rec, err
	}
	rows, p, err := readUvarint(p)
	if err != nil {
		return rec, err
	}
	if rows > 1<<40 {
		return rec, fmt.Errorf("ingest: seal row count %d out of range", rows)
	}
	rec.Rows = int(rows)
	rec.Name, p, err = readString(p)
	if err != nil {
		return rec, err
	}
	if rec.Seq == 0 || rec.Name != partName(rec.Seq) {
		return rec, fmt.Errorf("ingest: seal record name %q does not match seq %d", rec.Name, rec.Seq)
	}
	if len(p) != 0 {
		return rec, fmt.Errorf("ingest: %d trailing bytes in seal record", len(p))
	}
	return rec, nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("ingest: truncated varint")
	}
	return v, p[n:], nil
}

func readString(p []byte) (string, []byte, error) {
	n, p, err := readUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(p)) || n > 4096 {
		return "", nil, fmt.Errorf("ingest: string length %d out of bounds", n)
	}
	return string(p[:n]), p[n:], nil
}

// readManifest loads and scans a manifest file; a missing file maps to
// ErrNoDataset.
func readManifest(fsys FS, path string) (manifestView, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return manifestView{}, fmt.Errorf("%w: %s", ErrNoDataset, path)
		}
		return manifestView{}, err
	}
	return scanManifest(data)
}
