package ingest

import "repro/internal/obs"

// Metrics is the ingestion telemetry set. One Metrics instance is
// shared by every dataset of a Store; gauges track aggregates across
// them. The zero value is ready — datasets tick the counters whether or
// not Register was called, and Register wires them into an obs group
// (the register-through-obs rule: the hillview binary registers this
// group so /metrics and /api/status stay in sync).
type Metrics struct {
	// Appends counts Append calls; AppendedRows the rows they buffered.
	Appends, AppendedRows obs.Counter
	// Seals counts durably sealed partitions; SealedRows their rows.
	Seals, SealedRows obs.Counter
	// Recoveries counts Open calls that ran recovery; TornTruncated the
	// manifests truncated at a torn record; OrphansRemoved the
	// garbage-collected temp/unreferenced partition files.
	Recoveries, TornTruncated, OrphansRemoved obs.Counter
	// StandingRegistered counts standing-query registrations;
	// StandingUpdates the incremental re-merges applied on seals.
	StandingRegistered, StandingUpdates obs.Counter
	// OpenSegmentRows is the rows currently buffered in open segments;
	// LivePartitions the sealed partitions in live sets.
	OpenSegmentRows, LivePartitions obs.Gauge
	// SealLatency is the end-to-end durable-seal latency (write, fsync,
	// rename, dir fsync, manifest append, fsync), in nanoseconds.
	SealLatency obs.Histogram
}

// Register wires the metrics into an obs group.
func (m *Metrics) Register(g *obs.Group) {
	g.CounterFunc("appends", "Append calls accepted", m.Appends.Load)
	g.CounterFunc("appended_rows", "rows buffered into open segments", m.AppendedRows.Load)
	g.CounterFunc("seals", "partitions sealed durably", m.Seals.Load)
	g.CounterFunc("sealed_rows", "rows sealed into immutable partitions", m.SealedRows.Load)
	g.CounterFunc("recoveries", "manifest recovery scans executed", m.Recoveries.Load)
	g.CounterFunc("torn_records_truncated", "manifests truncated at a torn record", m.TornTruncated.Load)
	g.CounterFunc("orphans_removed", "orphaned temp/unreferenced files garbage-collected", m.OrphansRemoved.Load)
	g.CounterFunc("standing_registered", "standing-query registrations", m.StandingRegistered.Load)
	g.CounterFunc("standing_updates", "incremental standing-query re-merges", m.StandingUpdates.Load)
	g.GaugeFunc("open_segment_rows", "rows buffered in open segments", m.OpenSegmentRows.Load)
	g.GaugeFunc("live_partitions", "sealed partitions in live sets", m.LivePartitions.Load)
	g.RegisterHistogram("seal_latency", "durable seal latency", &m.SealLatency)
}

// metricsOrNil lets datasets tick a shared Metrics without nil checks
// at every site.
var nopMetrics Metrics

func (c Config) metrics() *Metrics {
	if c.Metrics != nil {
		return c.Metrics
	}
	return &nopMetrics
}
