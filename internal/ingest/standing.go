package ingest

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sketch"
)

// StandingQuery is a registered sketch whose running result tracks the
// dataset's sealed prefix incrementally. Registration folds the already
// sealed partitions from sk.Zero() in seal order; each later seal
// summarizes only the new partition and re-merges it (sketch.Extend) —
// never rescanning covered data. Because the fold visits the same
// file-loaded partitions in the same order as a from-scratch
// Summarize+MergeAll, the running result is bit-identical to
// recomputing over the same sealed prefix.
type StandingQuery struct {
	id string
	sk sketch.Sketch
	ds *Dataset

	// Guarded by ds.mu: the dataset's seal path updates these while
	// holding its own lock, so registration, updates, and reads all
	// serialize on it.
	running sketch.Result
	upTo    uint64 // highest seal seq folded in
	err     error  // sticky fold failure; Result reports it
}

// ID returns the query's identifier, unique within its dataset.
func (q *StandingQuery) ID() string { return q.id }

// Sketch returns the registered sketch.
func (q *StandingQuery) Sketch() sketch.Sketch { return q.sk }

// Result returns the current running result and the seal sequence it
// covers. The result is immutable (the Merge contract): callers may
// hold it across later seals.
func (q *StandingQuery) Result() (sketch.Result, uint64, error) {
	q.ds.mu.Lock()
	defer q.ds.mu.Unlock()
	return q.running, q.upTo, q.err
}

// StandingStatus is a snapshot of one standing query for status APIs.
type StandingStatus struct {
	ID     string `json:"id"`
	Sketch string `json:"sketch"`
	UpTo   uint64 `json:"up_to"`
	Failed bool   `json:"failed,omitempty"`
}

// Register installs a standing query for sk, folding every already
// sealed partition into its initial result before returning. From then
// on each durable seal extends the running result with just the new
// partition's summary, under the same lock that ordered the seal.
func (d *Dataset) Register(sk sketch.Sketch) (*StandingQuery, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return nil, err
	}
	q := &StandingQuery{
		id:      fmt.Sprintf("sq-%d", d.nextSID),
		sk:      sk,
		ds:      d,
		running: sk.Zero(),
	}
	for _, rec := range d.seals {
		t, err := d.loadPartition(rec)
		if err != nil {
			return nil, fmt.Errorf("ingest: standing query catch-up at %s: %w", rec.Name, err)
		}
		if q.running, err = sketch.Extend(sk, q.running, t); err != nil {
			return nil, fmt.Errorf("ingest: standing query catch-up at %s: %w", rec.Name, err)
		}
		q.upTo = rec.Seq
	}
	d.nextSID++
	d.standing = append(d.standing, q)
	d.m.StandingRegistered.Inc()
	return q, nil
}

// Unregister removes a standing query; its last result stays readable.
func (d *Dataset) Unregister(q *StandingQuery) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, s := range d.standing {
		if s == q {
			d.standing = append(d.standing[:i], d.standing[i+1:]...)
			return
		}
	}
}

// Standing lists the registered standing queries.
func (d *Dataset) Standing() []StandingStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]StandingStatus, len(d.standing))
	for i, q := range d.standing {
		out[i] = StandingStatus{ID: q.id, Sketch: q.sk.Name(), UpTo: q.upTo, Failed: q.err != nil}
	}
	return out
}

// StandingByID resolves a standing query by its identifier.
func (d *Dataset) StandingByID(id string) (*StandingQuery, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, q := range d.standing {
		if q.id == id {
			return q, true
		}
	}
	return nil, false
}

// updateStandingLocked extends every registered query with the
// just-sealed partition. It re-reads the partition file rather than
// using the in-memory frozen table so the summarized bytes are exactly
// what the query path will load — the bit-identity contract. A load or
// fold failure is sticky on the affected query only; the seal itself
// already committed.
func (d *Dataset) updateStandingLocked(ctx context.Context, rec sealRecord) {
	if len(d.standing) == 0 {
		return
	}
	sp := obs.TraceFrom(ctx).StartSpan("ingest.standing_update")
	t, err := d.loadPartition(rec)
	updated := 0
	for _, q := range d.standing {
		if q.err != nil {
			continue
		}
		if err != nil {
			q.err = fmt.Errorf("ingest: standing update at %s: %w", rec.Name, err)
			continue
		}
		next, merr := sketch.Extend(q.sk, q.running, t)
		if merr != nil {
			q.err = fmt.Errorf("ingest: standing update at %s: %w", rec.Name, merr)
			continue
		}
		q.running = next
		q.upTo = rec.Seq
		updated++
	}
	d.m.StandingUpdates.Add(int64(updated))
	sp.EndNote(fmt.Sprintf("%s queries=%d", rec.Name, updated))
}
