package ingest

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/table"
)

// SourcePrefix is the engine source-spec scheme for ingest datasets:
// "ingest:<name>" loads the live sealed partitions of the named dataset
// through a Store's WrapLoader.
const SourcePrefix = "ingest:"

// DirLister is the optional FS extension the Store uses to discover
// dataset directories under its root. OSFS, MemFS, and CrashFS all
// implement it.
type DirLister interface {
	// ListDirs lists the subdirectory names in dir, sorted.
	ListDirs(dir string) ([]string, error)
}

// StoreConfig tunes a Store and the datasets it manages.
type StoreConfig struct {
	// FS is the filesystem datasets live on (nil = the OS).
	FS FS
	// SegmentRows is the per-dataset auto-seal threshold (see Config).
	SegmentRows int
	// Metrics, when set, is shared by every dataset of the store.
	Metrics *Metrics
	// OnSeal, when set, runs after each durable seal of any dataset —
	// the serving layer advances the dataset's engine generation here.
	OnSeal func(dataset string, p Partition)
}

// Store manages the named ingest datasets under one root directory.
// Dataset names are single clean path elements; each maps to the
// directory <root>/<name>.
type Store struct {
	root string
	cfg  StoreConfig

	mu       sync.Mutex
	datasets map[string]*Dataset
	closed   bool
}

// NewStore returns a store rooted at dir. Existing datasets are opened
// (and recovered) lazily on first access, or eagerly via OpenAll.
func NewStore(root string, cfg StoreConfig) *Store {
	return &Store{root: root, cfg: cfg, datasets: make(map[string]*Dataset)}
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) fs() FS {
	if s.cfg.FS != nil {
		return s.cfg.FS
	}
	return OSFS{}
}

func (s *Store) datasetConfig(name string) Config {
	c := Config{FS: s.cfg.FS, SegmentRows: s.cfg.SegmentRows, Metrics: s.cfg.Metrics}
	if hook := s.cfg.OnSeal; hook != nil {
		c.OnSeal = func(p Partition) { hook(name, p) }
	}
	return c
}

// ValidName reports whether name is usable as a dataset name: a single
// clean path element with no separators or traversal.
func ValidName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("ingest: dataset name %q empty or too long", name)
	}
	if name == "." || name == ".." || strings.ContainsAny(name, "/\\:") {
		return fmt.Errorf("ingest: invalid dataset name %q", name)
	}
	return nil
}

// Create initializes a new dataset under the store.
func (s *Store) Create(name string, schema *table.Schema) (*Dataset, error) {
	if err := ValidName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("ingest: store is closed")
	}
	if _, ok := s.datasets[name]; ok {
		return nil, fmt.Errorf("ingest: dataset %q already exists", name)
	}
	d, err := Create(filepath.Join(s.root, name), schema, s.datasetConfig(name))
	if err != nil {
		return nil, err
	}
	s.datasets[name] = d
	return d, nil
}

// Get returns the named dataset, opening (recovering) it from disk on
// first access. ErrNoDataset reports an unknown name.
func (s *Store) Get(name string) (*Dataset, error) {
	if err := ValidName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("ingest: store is closed")
	}
	if d, ok := s.datasets[name]; ok {
		return d, nil
	}
	d, err := Open(filepath.Join(s.root, name), s.datasetConfig(name))
	if err != nil {
		return nil, err
	}
	s.datasets[name] = d
	return d, nil
}

// OpenAll discovers and opens every dataset under the root, returning
// the names opened. Directories that hold no recoverable dataset are
// skipped.
func (s *Store) OpenAll() ([]string, error) {
	lister, ok := s.fs().(DirLister)
	if !ok {
		return nil, errors.New("ingest: filesystem does not support discovery")
	}
	dirs, err := lister.ListDirs(s.root)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Fresh root: nothing to recover. Create it so a server
			// started with an empty -ingest-dir comes up writable.
			if mkErr := s.fs().MkdirAll(s.root); mkErr != nil {
				return nil, mkErr
			}
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, name := range dirs {
		if ValidName(name) != nil {
			continue
		}
		if _, err := s.Get(name); err != nil {
			if errors.Is(err, ErrNoDataset) {
				continue
			}
			return names, fmt.Errorf("ingest: opening dataset %q: %w", name, err)
		}
		names = append(names, name)
	}
	return names, nil
}

// Names lists the open datasets, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close seals every open segment and closes every dataset; the store
// rejects further access. Graceful shutdown calls this so buffered rows
// become durable before exit.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, d := range s.datasets {
		if err := d.Close(); first == nil {
			first = err
		}
	}
	return first
}

// WrapLoader returns an engine loader that serves "ingest:<name>"
// sources from this store — each live sealed partition becomes one
// engine partition, with its stable table ID — and delegates everything
// else to inner. The loader re-reads the live set on every call, so
// redo-log replay after an append observes the current sealed prefix.
func (s *Store) WrapLoader(inner engine.Loader, cfg engine.Config) engine.Loader {
	return func(id, source string) (engine.IDataSet, error) {
		name, ok := strings.CutPrefix(source, SourcePrefix)
		if !ok {
			if inner == nil {
				return nil, fmt.Errorf("ingest: unsupported source %q", source)
			}
			return inner(id, source)
		}
		d, err := s.Get(name)
		if err != nil {
			return nil, err
		}
		parts, err := d.Load()
		if err != nil {
			return nil, err
		}
		return engine.NewLocal(id, parts, cfg), nil
	}
}
