package ingest

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrashAtEveryPoint is the exhaustive crash battery in miniature:
// one scripted ingest run on a recording filesystem, then for every
// prefix of its operation sequence and every persistence policy, the
// simulated post-crash image is recovered and checked against the
// crash-safety contract:
//
//   - recovery always succeeds (or reports ErrNoDataset when the crash
//     predates a durable manifest);
//   - the recovered live set is a contiguous prefix 1..n of the seals,
//     and every seal acknowledged before the crash point survives;
//   - every recovered partition's bytes equal the original sealed bytes;
//   - after recovery the directory holds exactly MANIFEST plus the live
//     partitions (no orphans, no temp files);
//   - the recovered dataset accepts a further append+seal.
func TestCrashAtEveryPoint(t *testing.T) {
	ctx := context.Background()
	cfs := NewCrashFS()
	dir := "root/ds"

	// Script: create, then 3 append+seal rounds. ackOps[i] is the op
	// count at which seal i+1 was acknowledged; a crash at or past it
	// must preserve that seal.
	d, err := Create(dir, testSchema, Config{FS: cfs, SegmentRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	var (
		ackOps    []int
		sealBytes [][]byte
	)
	for i := 0; i < 3; i++ {
		if err := d.AppendRows(ctx, testRows(i*8, 8)); err != nil {
			t.Fatal(err)
		}
		p, err := d.Seal(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ackOps = append(ackOps, cfs.Ops())
		data, err := cfs.ReadFile(filepath.Join(dir, p.Name))
		if err != nil {
			t.Fatal(err)
		}
		sealBytes = append(sealBytes, data)
	}
	total := cfs.Ops()

	for _, pol := range []struct {
		name   string
		policy CrashPolicy
	}{{"keepall", CrashKeepAll}, {"dropunsynced", CrashDropUnsynced}, {"torn", CrashTorn}} {
		t.Run(pol.name, func(t *testing.T) {
			for k := 0; k <= total; k++ {
				for salt := uint64(0); salt < saltsFor(pol.policy); salt++ {
					img := cfs.SimulateCrash(k, pol.policy, salt)
					if err := checkRecovery(img, dir, k, ackOps, sealBytes); err != nil {
						t.Fatalf("crash after op %d (%s), salt %d: %v", k, cfs.DescribeOp(k-1), salt, err)
					}
				}
			}
		})
	}
}

// saltsFor returns how many torn-policy variants to try per crash point.
func saltsFor(p CrashPolicy) uint64 {
	if p == CrashTorn {
		return 4
	}
	return 1
}

// checkRecovery runs recovery on one crash image and enforces the
// contract. minLive is the number of seals acknowledged before the
// crash point — all of them must survive.
func checkRecovery(img *MemFS, dir string, k int, ackOps []int, sealBytes [][]byte) error {
	minLive := 0
	for _, at := range ackOps {
		if at <= k {
			minLive++
		}
	}
	d, err := Open(dir, Config{FS: img, SegmentRows: -1})
	if err != nil {
		if minLive > 0 {
			return fmt.Errorf("recovery failed with %d acknowledged seals: %w", minLive, err)
		}
		return nil // nothing was promised yet; "no dataset" is acceptable
	}
	defer d.Close()

	parts := d.Partitions()
	if len(parts) < minLive || len(parts) > len(sealBytes) {
		return fmt.Errorf("recovered %d partitions, want between %d and %d", len(parts), minLive, len(sealBytes))
	}
	for i, p := range parts {
		if p.Seq != uint64(i+1) {
			return fmt.Errorf("live set not contiguous: partition %d has seq %d", i, p.Seq)
		}
		data, err := img.ReadFile(filepath.Join(dir, p.Name))
		if err != nil {
			return fmt.Errorf("live partition unreadable: %w", err)
		}
		if !bytes.Equal(data, sealBytes[i]) {
			return fmt.Errorf("partition %s bytes differ from the sealed original", p.Name)
		}
	}

	// No orphans: exactly MANIFEST + live partitions remain.
	names, err := img.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if name == manifestName {
			continue
		}
		live := false
		for _, p := range parts {
			if p.Name == name {
				live = true
			}
		}
		if !live {
			return fmt.Errorf("orphan %q survived recovery", name)
		}
		if strings.HasSuffix(name, tmpSuffix) {
			return fmt.Errorf("temp file %q survived recovery", name)
		}
	}

	// The recovered dataset keeps working.
	ctx := context.Background()
	if err := d.AppendRows(ctx, testRows(100, 3)); err != nil {
		return fmt.Errorf("append after recovery: %w", err)
	}
	p, err := d.Seal(ctx)
	if err != nil {
		return fmt.Errorf("seal after recovery: %w", err)
	}
	if p.Seq != uint64(len(parts))+1 {
		return fmt.Errorf("post-recovery seal got seq %d, want %d", p.Seq, len(parts)+1)
	}
	return nil
}

// TestCrashKeepAllPreservesEverySeal pins the strongest policy: with
// the page cache surviving (plain process kill), every completed seal —
// acknowledged or not — whose manifest record was written is recovered.
func TestCrashKeepAllPreservesEverySeal(t *testing.T) {
	ctx := context.Background()
	cfs := NewCrashFS()
	d, err := Create("r/ds", testSchema, Config{FS: cfs, SegmentRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRows(ctx, testRows(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	img := cfs.SimulateCrash(cfs.Ops(), CrashKeepAll, 0)
	re, err := Open("r/ds", Config{FS: img})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Partitions()); got != 1 {
		t.Fatalf("recovered %d partitions, want 1", got)
	}
}
