package ingest

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/table"
)

var testSchema = table.NewSchema(
	table.ColumnDesc{Name: "a", Kind: table.KindInt},
	table.ColumnDesc{Name: "b", Kind: table.KindString},
)

// buildManifest renders a full manifest image: header, schema, seals.
func buildManifest(schema *table.Schema, seals ...sealRecord) []byte {
	data := append([]byte(nil), manifestMagic[:]...)
	data = append(data, frameRecord(encodeSchemaRecord(schema))...)
	for _, r := range seals {
		data = append(data, frameRecord(encodeSealRecord(r))...)
	}
	return data
}

// isPrefix reports whether got is exactly full[:len(got)].
func isPrefix(got, full []sealRecord) bool {
	if len(got) > len(full) {
		return false
	}
	for i := range got {
		if got[i] != full[i] {
			return false
		}
	}
	return true
}

func mkSeals(n int) []sealRecord {
	out := make([]sealRecord, n)
	for i := range out {
		seq := uint64(i + 1)
		out[i] = sealRecord{Seq: seq, Rows: 10 * (i + 1), Name: partName(seq)}
	}
	return out
}

func TestManifestRoundTrip(t *testing.T) {
	seals := mkSeals(5)
	data := buildManifest(testSchema, seals...)
	v, err := scanManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.torn {
		t.Fatal("clean manifest reported torn")
	}
	if v.validLen != int64(len(data)) {
		t.Fatalf("validLen = %d, want %d", v.validLen, len(data))
	}
	if !schemasEqual(v.schema, testSchema) {
		t.Fatalf("schema round trip mismatch: %+v", v.schema)
	}
	if !reflect.DeepEqual(v.seals, seals) {
		t.Fatalf("seals round trip mismatch:\n%+v\n%+v", v.seals, seals)
	}
}

// TestManifestEveryTruncation pins the core recovery property: any
// byte-prefix of a valid manifest decodes to a prefix of its seals —
// never an error (past the schema record), never a reordered or
// invented seal.
func TestManifestEveryTruncation(t *testing.T) {
	seals := mkSeals(4)
	data := buildManifest(testSchema, seals...)
	headerLen := len(manifestMagic) + len(frameRecord(encodeSchemaRecord(testSchema)))
	for cut := 0; cut <= len(data); cut++ {
		v, err := scanManifest(data[:cut])
		if cut < headerLen {
			if !errors.Is(err, ErrNoDataset) {
				t.Fatalf("cut=%d (inside header/schema): err = %v, want ErrNoDataset", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		if v.validLen > int64(cut) {
			t.Fatalf("cut=%d: validLen %d beyond image", cut, v.validLen)
		}
		if v.torn != (int64(cut) > v.validLen) {
			t.Fatalf("cut=%d: torn=%v validLen=%d", cut, v.torn, v.validLen)
		}
		if !isPrefix(v.seals, seals) {
			t.Fatalf("cut=%d: seals are not a prefix: %+v", cut, v.seals)
		}
	}
}

// TestManifestEveryCorruption flips each byte of the image in turn; the
// scan must never panic and must never yield seals that are not a
// prefix of the true sequence.
func TestManifestEveryCorruption(t *testing.T) {
	seals := mkSeals(3)
	data := buildManifest(testSchema, seals...)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		v, err := scanManifest(mut)
		if err != nil {
			continue // header/schema damage: no dataset, fine
		}
		if !isPrefix(v.seals, seals) {
			t.Fatalf("flip at %d: recovered non-prefix seals %+v", i, v.seals)
		}
		if len(v.seals) < len(seals) && !v.torn {
			t.Fatalf("flip at %d: dropped seals without reporting torn", i)
		}
	}
}

func TestManifestRejectsSeqGap(t *testing.T) {
	// A record claiming seq 3 directly after seq 1 must stop the scan.
	data := buildManifest(testSchema, sealRecord{Seq: 1, Rows: 1, Name: partName(1)})
	good := len(data)
	data = append(data, frameRecord(encodeSealRecord(sealRecord{Seq: 3, Rows: 1, Name: partName(3)}))...)
	v, err := scanManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.seals) != 1 || !v.torn || v.validLen != int64(good) {
		t.Fatalf("gap record accepted: seals=%d torn=%v validLen=%d want 1/true/%d", len(v.seals), v.torn, v.validLen, good)
	}
}

func TestManifestBoundsHugeLength(t *testing.T) {
	data := buildManifest(testSchema)
	data = binary.LittleEndian.AppendUint32(data, 1<<31-1)
	data = append(data, make([]byte, 64)...)
	v, err := scanManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !v.torn || len(v.seals) != 0 {
		t.Fatalf("oversized length field not treated as torn tail: %+v", v)
	}
}

func TestReadManifestMissing(t *testing.T) {
	if _, err := readManifest(NewMemFS(), "nope/MANIFEST"); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("missing manifest: err = %v, want ErrNoDataset", err)
	}
}
