package ingest

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle on an FS. Sync must not return until
// every byte previously written through the handle is durable.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the narrow filesystem surface the ingestion path writes
// through. Every durability-relevant operation of the sealing protocol
// (write, fsync, rename, directory fsync, truncate, remove) goes
// through this interface, so the crash harness can interpose an
// instrumented implementation that records the operation sequence and
// replays arbitrary crash points (see CrashFS).
//
// Path semantics are opaque strings: implementations may be rooted in
// the real filesystem (OSFS) or a flat in-memory namespace (MemFS).
// Callers always build paths with filepath.Join.
type FS interface {
	// Create creates or truncates a file for writing.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newName with oldName's file.
	Rename(oldName, newName string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts the file to size bytes.
	Truncate(name string, size int64) error
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making entry operations
	// (create, rename, remove) under it durable.
	SyncDir(dir string) error
}

// OSFS is the production FS: the operating system's filesystem.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldName, newName string) error { return os.Rename(oldName, newName) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ListDirs lists the subdirectory names in dir, sorted (the optional
// DirLister extension the Store uses to discover datasets).
func (OSFS) ListDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some platforms reject fsync on directories; treat that as a no-op
	// rather than failing the seal (the rename itself already happened).
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// dirOf returns the directory of a path for SyncDir calls.
func dirOf(path string) string { return filepath.Dir(path) }
