package ingest

import (
	"bytes"
	"fmt"
	"path/filepath"
)

// CrashFS is the instrumented FS behind the crash-point battery. It
// behaves exactly like a MemFS for the process using it, but records
// every durability-relevant operation (create, write, sync, rename,
// remove, truncate, directory sync) in order. SimulateCrash then
// replays a prefix of that sequence into a fresh MemFS under a chosen
// persistence policy, producing the disk image a kill at that point
// could have left behind; recovery is run against the image and must
// always yield a consistent sealed prefix.
//
// The persistence model is per-file: content written since the last
// Sync on the file may be lost (or torn — partially persisted), and
// namespace operations (create, rename, remove) since the last SyncDir
// on the parent directory may be lost independently of content. This is
// deliberately adversarial within POSIX semantics: fsync(file) makes
// content durable but not the entry; only fsync(dir) pins the entry.
type CrashFS struct {
	mem *MemFS // live volatile view the running process sees
	ops []crashOp
}

type opKind uint8

const (
	opCreate opKind = iota + 1
	opWrite
	opSync
	opRename
	opRemove
	opTruncate
	opSyncDir
	opMkdir
)

type crashOp struct {
	kind  opKind
	name  string
	name2 string // rename target
	data  []byte // write payload (copied)
	size  int64  // truncate size
}

// CrashPolicy selects how unsynced state behaves at the simulated kill.
type CrashPolicy int

const (
	// CrashKeepAll keeps every volatile byte and entry: a plain process
	// kill with the OS (and its page cache) surviving.
	CrashKeepAll CrashPolicy = iota
	// CrashDropUnsynced loses everything not explicitly made durable: a
	// power cut against a write-back cache that never flushed on its own.
	CrashDropUnsynced
	// CrashTorn persists a pseudo-random (deterministic in the salt)
	// prefix of each file's unsynced tail and flips a deterministic coin
	// per unsynced namespace operation — torn writes and half-applied
	// renames, the adversarial middle ground.
	CrashTorn
)

// NewCrashFS returns an empty recording filesystem.
func NewCrashFS() *CrashFS {
	return &CrashFS{mem: NewMemFS()}
}

func (c *CrashFS) record(op crashOp) {
	c.mem.mu.Lock()
	c.ops = append(c.ops, op)
	c.mem.mu.Unlock()
}

// Ops returns how many operations have been recorded so far.
func (c *CrashFS) Ops() int {
	c.mem.mu.Lock()
	defer c.mem.mu.Unlock()
	return len(c.ops)
}

// DescribeOp renders op i for failure messages.
func (c *CrashFS) DescribeOp(i int) string {
	c.mem.mu.Lock()
	defer c.mem.mu.Unlock()
	if i < 0 || i >= len(c.ops) {
		return fmt.Sprintf("op %d of %d", i, len(c.ops))
	}
	op := c.ops[i]
	switch op.kind {
	case opCreate:
		return fmt.Sprintf("create %s", op.name)
	case opWrite:
		return fmt.Sprintf("write %s (%d bytes)", op.name, len(op.data))
	case opSync:
		return fmt.Sprintf("sync %s", op.name)
	case opRename:
		return fmt.Sprintf("rename %s -> %s", op.name, op.name2)
	case opRemove:
		return fmt.Sprintf("remove %s", op.name)
	case opTruncate:
		return fmt.Sprintf("truncate %s to %d", op.name, op.size)
	case opSyncDir:
		return fmt.Sprintf("syncdir %s", op.name)
	case opMkdir:
		return fmt.Sprintf("mkdir %s", op.name)
	}
	return "unknown op"
}

type crashFile struct {
	c    *CrashFS
	f    File
	name string
}

func (f *crashFile) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	if n > 0 {
		f.c.record(crashOp{kind: opWrite, name: f.name, data: append([]byte(nil), p[:n]...)})
	}
	return n, err
}

func (f *crashFile) Sync() error {
	f.c.record(crashOp{kind: opSync, name: f.name})
	return f.f.Sync()
}

func (f *crashFile) Close() error { return f.f.Close() }

// Create implements FS.
func (c *CrashFS) Create(name string) (File, error) {
	f, err := c.mem.Create(name)
	if err != nil {
		return nil, err
	}
	c.record(crashOp{kind: opCreate, name: name})
	return &crashFile{c: c, f: f, name: name}, nil
}

// OpenAppend implements FS.
func (c *CrashFS) OpenAppend(name string) (File, error) {
	c.mem.mu.Lock()
	_, existed := c.mem.files[name]
	c.mem.mu.Unlock()
	f, err := c.mem.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	if !existed {
		c.record(crashOp{kind: opCreate, name: name})
	}
	return &crashFile{c: c, f: f, name: name}, nil
}

// ReadFile implements FS.
func (c *CrashFS) ReadFile(name string) ([]byte, error) { return c.mem.ReadFile(name) }

// Rename implements FS.
func (c *CrashFS) Rename(oldName, newName string) error {
	if err := c.mem.Rename(oldName, newName); err != nil {
		return err
	}
	c.record(crashOp{kind: opRename, name: oldName, name2: newName})
	return nil
}

// Remove implements FS.
func (c *CrashFS) Remove(name string) error {
	if err := c.mem.Remove(name); err != nil {
		return err
	}
	c.record(crashOp{kind: opRemove, name: name})
	return nil
}

// Truncate implements FS.
func (c *CrashFS) Truncate(name string, size int64) error {
	if err := c.mem.Truncate(name, size); err != nil {
		return err
	}
	c.record(crashOp{kind: opTruncate, name: name, size: size})
	return nil
}

// ReadDir implements FS.
func (c *CrashFS) ReadDir(dir string) ([]string, error) { return c.mem.ReadDir(dir) }

// ListDirs implements DirLister.
func (c *CrashFS) ListDirs(dir string) ([]string, error) { return c.mem.ListDirs(dir) }

// MkdirAll implements FS.
func (c *CrashFS) MkdirAll(dir string) error {
	if err := c.mem.MkdirAll(dir); err != nil {
		return err
	}
	c.record(crashOp{kind: opMkdir, name: dir})
	return nil
}

// SyncDir implements FS.
func (c *CrashFS) SyncDir(dir string) error {
	c.record(crashOp{kind: opSyncDir, name: dir})
	return c.mem.SyncDir(dir)
}

// rfile is the replay model of one inode: volatile vs durably-synced
// content, and the name under which its directory entry is durable (""
// when the entry was never synced, or its removal was).
type rfile struct {
	vol, durable     []byte
	volName, durName string
	born             int // op index of creation, for deterministic coins
}

// crashMix is a splitmix-style finalizer for the torn policy's
// deterministic coins.
func crashMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SimulateCrash replays the first k recorded operations and returns the
// disk image a crash immediately after operation k-1 could leave under
// the policy. salt drives the torn policy's deterministic choices; it
// is ignored by the other policies.
func (c *CrashFS) SimulateCrash(k int, policy CrashPolicy, salt uint64) *MemFS {
	c.mem.mu.Lock()
	ops := append([]crashOp(nil), c.ops[:min(k, len(c.ops))]...)
	c.mem.mu.Unlock()

	var (
		all    []*rfile
		byName = map[string]*rfile{}
		dirs   []string
	)
	for i, op := range ops {
		switch op.kind {
		case opCreate:
			if old := byName[op.name]; old != nil {
				old.volName = "" // truncated over: the old inode's content is gone
				old.vol, old.durable = nil, nil
			}
			f := &rfile{volName: op.name, born: i}
			byName[op.name] = f
			all = append(all, f)
		case opWrite:
			if f := byName[op.name]; f != nil {
				f.vol = append(f.vol, op.data...)
			}
		case opSync:
			if f := byName[op.name]; f != nil {
				f.durable = append([]byte(nil), f.vol...)
			}
		case opRename:
			f := byName[op.name]
			if f == nil {
				continue
			}
			delete(byName, op.name)
			if tgt := byName[op.name2]; tgt != nil {
				tgt.volName = ""
				tgt.vol, tgt.durable = nil, nil
			}
			f.volName = op.name2
			byName[op.name2] = f
		case opRemove:
			if f := byName[op.name]; f != nil {
				delete(byName, op.name)
				f.volName = ""
			}
		case opTruncate:
			if f := byName[op.name]; f != nil && op.size >= 0 && op.size <= int64(len(f.vol)) {
				f.vol = f.vol[:op.size]
			}
		case opSyncDir:
			for _, f := range all {
				switch {
				case f.volName != "" && filepath.Dir(f.volName) == op.name:
					f.durName = f.volName
				case f.volName == "" && f.durName != "" && filepath.Dir(f.durName) == op.name:
					f.durName = "" // removal (or overwrite) is now durable
				}
			}
		case opMkdir:
			dirs = append(dirs, op.name)
		}
	}

	out := NewMemFS()
	for _, d := range dirs {
		out.MkdirAll(d)
	}
	for idx, f := range all {
		name, content := f.crashState(policy, salt, uint64(idx))
		if name != "" {
			out.put(name, content)
		}
	}
	return out
}

// crashState resolves one inode's post-crash name and content.
func (f *rfile) crashState(policy CrashPolicy, salt, idx uint64) (string, []byte) {
	switch policy {
	case CrashKeepAll:
		return f.volName, append([]byte(nil), f.vol...)
	case CrashDropUnsynced:
		if f.durName == "" {
			return "", nil
		}
		return f.durName, append([]byte(nil), f.durable...)
	default: // CrashTorn
		name := f.durName
		if f.volName != f.durName {
			// The pending namespace op (create/rename/remove) may or may
			// not have reached disk on its own.
			if crashMix(salt^idx^uint64(f.born)<<17)&1 == 0 {
				name = f.volName
			}
		}
		if name == "" {
			return "", nil
		}
		content := append([]byte(nil), f.durable...)
		if len(f.vol) > len(f.durable) && bytes.HasPrefix(f.vol, f.durable) {
			tail := f.vol[len(f.durable):]
			keep := int(crashMix(salt^(idx<<21)^uint64(len(tail))) % uint64(len(tail)+1))
			content = append(content, tail[:keep]...)
		} else if !bytes.Equal(f.vol, f.durable) && crashMix(salt^(idx<<7))&1 == 0 {
			content = append([]byte(nil), f.vol...)
		}
		return name, content
	}
}
