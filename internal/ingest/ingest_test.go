package ingest

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/table"
)

func testRows(lo, n int) []table.Row {
	rows := make([]table.Row, n)
	for i := range rows {
		rows[i] = table.Row{
			table.IntValue(int64(lo + i)),
			table.StringValue(fmt.Sprintf("s%03d", (lo+i)%7)),
		}
	}
	return rows
}

func mustDataset(t *testing.T, fs FS, dir string, cfg Config) *Dataset {
	t.Helper()
	cfg.FS = fs
	d, err := Create(dir, testSchema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAppendSealLoadRoundTrip(t *testing.T) {
	ctx := context.Background()
	fs := NewMemFS()
	d := mustDataset(t, fs, "root/ds", Config{SegmentRows: -1})
	if err := d.AppendRows(ctx, testRows(0, 10)); err != nil {
		t.Fatal(err)
	}
	if got := d.OpenRows(); got != 10 {
		t.Fatalf("OpenRows = %d, want 10", got)
	}
	p, err := d.Seal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Seq != 1 || p.Rows != 10 || p.Name != "part-000001.hvc" {
		t.Fatalf("sealed partition = %+v", p)
	}
	if err := d.AppendRows(ctx, testRows(10, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if got := d.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}

	parts, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts[0].NumRows() != 10 || parts[1].NumRows() != 5 {
		t.Fatalf("loaded %d parts, rows %v", len(parts), parts)
	}
	if parts[0].ID() != "ds/part-000001" || parts[1].ID() != "ds/part-000002" {
		t.Fatalf("partition IDs not stable: %q %q", parts[0].ID(), parts[1].ID())
	}
	// Row content survives the round trip.
	want := testRows(0, 10)
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(parts[0].GetRow(i), want[i]) {
			t.Fatalf("row %d = %+v, want %+v", i, parts[0].GetRow(i), want[i])
		}
	}

	// An empty seal is a no-op.
	if p, err := d.Seal(ctx); err != nil || p != nil {
		t.Fatalf("empty seal = (%+v, %v), want (nil, nil)", p, err)
	}
}

func TestAutoSealThreshold(t *testing.T) {
	ctx := context.Background()
	d := mustDataset(t, NewMemFS(), "root/ds", Config{SegmentRows: 8})
	for i := 0; i < 5; i++ {
		if err := d.AppendRows(ctx, testRows(i*3, 3)); err != nil {
			t.Fatal(err)
		}
	}
	// 15 rows with a threshold of 8: the 3rd append (9 rows) seals, then
	// 6 more rows stay buffered.
	if got := len(d.Partitions()); got != 1 {
		t.Fatalf("auto-sealed partitions = %d, want 1", got)
	}
	if got := d.Partitions()[0].Rows; got != 9 {
		t.Fatalf("auto-sealed rows = %d, want 9", got)
	}
	if got := d.OpenRows(); got != 6 {
		t.Fatalf("open rows = %d, want 6", got)
	}
}

func TestReopenRecoversLiveSet(t *testing.T) {
	ctx := context.Background()
	fs := NewMemFS()
	d := mustDataset(t, fs, "root/ds", Config{SegmentRows: -1})
	for i := 0; i < 3; i++ {
		if err := d.AppendRows(ctx, testRows(i*4, 4)); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Seal(ctx); err != nil {
			t.Fatal(err)
		}
	}
	before, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Buffered-but-unsealed rows are volatile by contract; Close seals
	// them, so append some and close.
	if err := d.AppendRows(ctx, testRows(100, 2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRows(ctx, testRows(0, 1)); err == nil {
		t.Fatal("append after Close succeeded")
	}

	re, err := Open("root/ds", Config{FS: fs, SegmentRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Partitions()); got != 4 {
		t.Fatalf("recovered partitions = %d, want 4 (3 + close-seal)", got)
	}
	after, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if !reflect.DeepEqual(tableRows(before[i]), tableRows(after[i])) {
			t.Fatalf("partition %d changed across reopen", i)
		}
	}
	if re.Generation() != 4 {
		t.Fatalf("recovered generation = %d, want 4", re.Generation())
	}

	// Schema-checked reopen.
	if _, err := OpenOrCreate("root/ds", testSchema, Config{FS: fs}); err != nil {
		t.Fatal(err)
	}
	other := table.NewSchema(table.ColumnDesc{Name: "z", Kind: table.KindDouble})
	if _, err := OpenOrCreate("root/ds", other, Config{FS: fs}); err == nil {
		t.Fatal("schema mismatch not detected")
	}
}

func tableRows(t *table.Table) []table.Row {
	out := make([]table.Row, 0, t.NumRows())
	t.Members().Iterate(func(i int) bool {
		out = append(out, t.GetRow(i))
		return true
	})
	return out
}

func TestRecoveryRemovesOrphans(t *testing.T) {
	ctx := context.Background()
	fs := NewMemFS()
	d := mustDataset(t, fs, "root/ds", Config{SegmentRows: -1})
	if err := d.AppendRows(ctx, testRows(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// A crashed seal leaves a temp file and an unreferenced partition.
	fs.put("root/ds/part-000002.hvc.tmp", []byte("torn"))
	fs.put("root/ds/part-000002.hvc", []byte("unreferenced"))

	var m Metrics
	re, err := Open("root/ds", Config{FS: fs, Metrics: &m, SegmentRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("root/ds")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"MANIFEST", "part-000001.hvc"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("directory after recovery = %v, want %v", names, want)
	}
	if got := m.OrphansRemoved.Load(); got != 2 {
		t.Fatalf("orphans removed = %d, want 2", got)
	}
	// The reissued sequence number must not collide with the swept file.
	if err := re.AppendRows(ctx, testRows(50, 2)); err != nil {
		t.Fatal(err)
	}
	if p, err := re.Seal(ctx); err != nil || p.Seq != 2 {
		t.Fatalf("post-recovery seal = (%+v, %v)", p, err)
	}
}

func TestAppendValidation(t *testing.T) {
	ctx := context.Background()
	d := mustDataset(t, NewMemFS(), "root/ds", Config{})
	if err := d.AppendRows(ctx, []table.Row{{table.IntValue(1)}}); err == nil {
		t.Fatal("short row accepted")
	}
	b := table.NewBuilder(table.NewSchema(table.ColumnDesc{Name: "z", Kind: table.KindDouble}), 1)
	b.AppendRow(table.Row{table.DoubleValue(1)})
	if err := d.Append(ctx, b.Freeze("x")); err == nil {
		t.Fatal("mismatched batch schema accepted")
	}
}

func TestStandingQueryMatchesReference(t *testing.T) {
	ctx := context.Background()
	d := mustDataset(t, NewMemFS(), "root/ds", Config{SegmentRows: -1})
	sk := &sketch.HistogramSketch{Col: "a", Buckets: sketch.NumericBuckets(table.KindInt, 0, 64, 8)}

	q, err := d.Register(sk)
	if err != nil {
		t.Fatal(err)
	}
	var mid *StandingQuery
	for i := 0; i < 4; i++ {
		if err := d.AppendRows(ctx, testRows(i*16, 16)); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Seal(ctx); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// Mid-stream registration must catch up on the sealed prefix.
			if mid, err = d.Register(sk); err != nil {
				t.Fatal(err)
			}
		}
	}

	reference := func() sketch.Result {
		parts, err := d.Load()
		if err != nil {
			t.Fatal(err)
		}
		var rs []sketch.Result
		for _, p := range parts {
			r, err := sk.Summarize(p)
			if err != nil {
				t.Fatal(err)
			}
			rs = append(rs, r)
		}
		res, err := sketch.MergeAll(sk, rs...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	for name, query := range map[string]*StandingQuery{"from-start": q, "mid-stream": mid} {
		res, upTo, err := query.Result()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if upTo != 4 {
			t.Fatalf("%s: upTo = %d, want 4", name, upTo)
		}
		if !reflect.DeepEqual(res, reference) {
			t.Fatalf("%s: standing result differs from reference fold:\n%+v\n%+v", name, res, reference)
		}
	}

	if got := len(d.Standing()); got != 2 {
		t.Fatalf("standing queries = %d, want 2", got)
	}
	if _, ok := d.StandingByID(q.ID()); !ok {
		t.Fatal("StandingByID missed a registered query")
	}
	d.Unregister(mid)
	if got := len(d.Standing()); got != 1 {
		t.Fatalf("standing queries after Unregister = %d, want 1", got)
	}
}

func TestStoreLifecycle(t *testing.T) {
	ctx := context.Background()
	fs := NewMemFS()
	var seals []string
	st := NewStore("root", StoreConfig{FS: fs, SegmentRows: -1, OnSeal: func(name string, p Partition) {
		seals = append(seals, fmt.Sprintf("%s/%d", name, p.Seq))
	}})
	d, err := st.Create("flights", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("flights", testSchema); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", "a:b"} {
		if _, err := st.Create(bad, testSchema); err == nil {
			t.Fatalf("invalid name %q accepted", bad)
		}
	}
	if err := d.AppendRows(ctx, testRows(0, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seals, []string{"flights/1"}) {
		t.Fatalf("OnSeal hook calls = %v", seals)
	}

	// The loader serves ingest: sources and delegates the rest.
	loader := st.WrapLoader(func(id, source string) (engine.IDataSet, error) {
		return nil, errors.New("inner called")
	}, engine.Config{Parallelism: 2, AggregationWindow: -1})
	ds, err := loader("view", "ingest:flights")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Sketch(ctx, &sketch.DistinctCountSketch{Col: "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil sketch result through ingest loader")
	}
	if _, err := loader("x", "file:/nope.csv"); err == nil || err.Error() != "inner called" {
		t.Fatalf("non-ingest source not delegated: %v", err)
	}
	if _, err := loader("x", "ingest:absent"); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("unknown dataset: err = %v, want ErrNoDataset", err)
	}

	// Buffered rows seal on Close; a second store rediscovers the data.
	if err := d.AppendRows(ctx, testRows(10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("flights"); err == nil {
		t.Fatal("Get on closed store succeeded")
	}

	st2 := NewStore("root", StoreConfig{FS: fs, SegmentRows: -1})
	opened, err := st2.OpenAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(opened, []string{"flights"}) {
		t.Fatalf("OpenAll = %v, want [flights]", opened)
	}
	d2, err := st2.Get("flights")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d2.Partitions()); got != 2 {
		t.Fatalf("rediscovered partitions = %d, want 2", got)
	}
}
