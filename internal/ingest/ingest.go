// Package ingest is the crash-safe streaming ingestion path: an
// append-only dataset whose durable form is a directory of immutable
// HVC2 partition files plus one append-only manifest log.
//
// # Sealing protocol
//
// Writers buffer row batches into an open segment (volatile by
// contract: rows are durable only once sealed). Seal freezes the
// segment into one HVC2 partition and makes it durable in five ordered
// steps:
//
//  1. write the partition image to part-NNNNNN.hvc.tmp
//  2. fsync the temp file — content durable
//  3. rename temp → part-NNNNNN.hvc
//  4. fsync the directory — the entry durable
//  5. append a CRC-framed seal record to MANIFEST and fsync it
//
// Only step 5 commits: a partition file is live exactly when a valid
// manifest record names it. A crash at any point leaves either a temp
// file (steps 1–3), an unreferenced partition file (steps 3–5), or a
// torn manifest tail — all invisible to queries and removed by
// recovery. A seal record can become durable only after steps 2 and 4,
// so a referenced partition is always complete; recovery verifies this
// invariant by re-reading every referenced file.
//
// # Recovery
//
// Open scans the manifest, truncates it at the first torn or corrupt
// record (see manifest.go for the hardened reader), verifies every
// referenced partition file, and garbage-collects everything else in
// the directory — temp files and unreferenced partitions — syncing the
// directory before the dataset accepts new appends, so a later crash
// cannot resurrect a removed file under a sequence number that has been
// reissued.
//
// # Queries and standing queries
//
// Load materializes the live partitions as immutable tables with
// stable IDs ("<dataset>/part-NNNNNN"), which is what the engine
// loader serves; stable IDs keep per-partition sampling seeds — and
// therefore every sketch result — bit-identical across reloads.
// Standing queries (standing.go) exploit summary mergeability: a
// registered sketch folds each newly sealed partition's summary into
// its running result instead of rescanning, in seal order, so the
// running result is bit-identical to a from-scratch fold over the same
// sealed prefix.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/table"
)

const (
	manifestName = "MANIFEST"
	tmpSuffix    = ".tmp"

	// DefaultSegmentRows triggers an automatic seal when the open
	// segment reaches it. It is a trigger, not a cap: one oversized
	// Append may exceed it, sealing the whole batch as one partition.
	DefaultSegmentRows = 1 << 18
)

// partName renders the partition file name for a sequence number.
func partName(seq uint64) string { return fmt.Sprintf("part-%06d.hvc", seq) }

// Partition describes one sealed, live partition.
type Partition struct {
	// Seq is the 1-based seal sequence number.
	Seq uint64
	// Name is the partition file name within the dataset directory.
	Name string
	// Rows is the partition's row count.
	Rows int
}

// Config tunes a Dataset.
type Config struct {
	// FS is the filesystem the dataset lives on (nil = the OS).
	FS FS
	// SegmentRows is the auto-seal threshold (0 = DefaultSegmentRows,
	// < 0 disables auto-seal: only explicit Seal calls seal).
	SegmentRows int
	// Metrics, when set, receives ingestion telemetry.
	Metrics *Metrics
	// OnSeal, when set, runs after each durable seal (and after standing
	// queries were re-merged) — the hook the serving layer uses to
	// advance the dataset's engine generation.
	OnSeal func(Partition)
}

func (c Config) fs() FS {
	if c.FS != nil {
		return c.FS
	}
	return OSFS{}
}

func (c Config) segmentRows() int {
	if c.SegmentRows == 0 {
		return DefaultSegmentRows
	}
	return c.SegmentRows
}

// Dataset is one append-only ingest dataset rooted in a directory.
// All methods are safe for concurrent use; appends and seals serialize.
type Dataset struct {
	dir    string
	name   string
	fs     FS
	cfg    Config
	schema *table.Schema
	m      *Metrics

	mu       sync.Mutex
	manifest File // open append handle
	seals    []sealRecord
	seg      *table.Builder
	segRows  int
	gen      uint64
	standing []*StandingQuery
	nextSID  int
	failed   error // sticky mid-protocol I/O failure; reopen to recover
	closed   bool
}

// Create initializes a fresh dataset in dir with the given schema,
// failing if a recoverable dataset already exists there. The manifest
// (header plus schema record) is written atomically — temp, fsync,
// rename, dir fsync — so a crash during Create leaves either no
// dataset or a complete empty one; stray files from such a crash are
// swept here.
func Create(dir string, schema *table.Schema, cfg Config) (*Dataset, error) {
	fsys := cfg.fs()
	if schema == nil || schema.NumColumns() == 0 {
		return nil, fmt.Errorf("ingest: empty schema for %s", dir)
	}
	for _, cd := range schema.Columns {
		switch cd.Kind {
		case table.KindInt, table.KindDouble, table.KindString, table.KindDate:
		default:
			return nil, fmt.Errorf("ingest: column %q kind %v not storable", cd.Name, cd.Kind)
		}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	mpath := filepath.Join(dir, manifestName)
	if _, err := readManifest(fsys, mpath); err == nil {
		return nil, fmt.Errorf("ingest: dataset already exists in %s", dir)
	} else if !errors.Is(err, ErrNoDataset) {
		return nil, err
	}
	tmp := mpath + tmpSuffix
	if err := writeFileAtomic(fsys, tmp, mpath, func(f File) error {
		if _, err := f.Write(manifestMagic[:]); err != nil {
			return err
		}
		_, err := f.Write(frameRecord(encodeSchemaRecord(schema)))
		return err
	}); err != nil {
		return nil, fmt.Errorf("ingest: writing manifest: %w", err)
	}
	d := newDataset(dir, schema, cfg)
	// A crash in an earlier Create can leave stray files; no seal can
	// have happened (the schema record precedes all seals), so everything
	// but the fresh manifest goes.
	if err := d.gc(nil); err != nil {
		return nil, err
	}
	if err := d.openManifestHandle(); err != nil {
		return nil, err
	}
	return d, nil
}

// Open recovers the dataset in dir: it scans the manifest, truncates a
// torn tail, verifies every referenced partition file, and removes
// orphans. ErrNoDataset reports an absent (or never-completed) dataset.
func Open(dir string, cfg Config) (*Dataset, error) {
	fsys := cfg.fs()
	m := cfg.metrics()
	mpath := filepath.Join(dir, manifestName)
	view, err := readManifest(fsys, mpath)
	if err != nil {
		return nil, err
	}
	m.Recoveries.Inc()
	if view.torn {
		if err := fsys.Truncate(mpath, view.validLen); err != nil {
			return nil, fmt.Errorf("ingest: truncating torn manifest: %w", err)
		}
		m.TornTruncated.Inc()
	}
	d := newDataset(dir, view.schema, cfg)
	d.seals = view.seals
	d.gen = uint64(len(view.seals))
	// The sealing protocol guarantees a referenced partition was fully
	// durable before its record could be; verify it (the file exists,
	// parses, passes its CRCs, and has the recorded row count) so a
	// violated invariant surfaces here, loudly, not as a torn scan.
	for _, rec := range view.seals {
		if _, err := d.loadPartition(rec); err != nil {
			return nil, fmt.Errorf("ingest: manifest references unreadable partition %s: %w", rec.Name, err)
		}
	}
	if err := d.gc(view.seals); err != nil {
		return nil, err
	}
	if err := d.openManifestHandle(); err != nil {
		return nil, err
	}
	m.LivePartitions.Add(int64(len(view.seals)))
	return d, nil
}

// OpenOrCreate opens an existing dataset or creates a fresh one. When
// the dataset exists, schema (if non-nil) must match the recovered one.
func OpenOrCreate(dir string, schema *table.Schema, cfg Config) (*Dataset, error) {
	d, err := Open(dir, cfg)
	if errors.Is(err, ErrNoDataset) {
		if schema == nil {
			return nil, err
		}
		return Create(dir, schema, cfg)
	}
	if err != nil {
		return nil, err
	}
	if schema != nil && !schemasEqual(schema, d.schema) {
		return nil, fmt.Errorf("ingest: schema mismatch for existing dataset %s", dir)
	}
	return d, nil
}

func newDataset(dir string, schema *table.Schema, cfg Config) *Dataset {
	return &Dataset{
		dir:    dir,
		name:   filepath.Base(dir),
		fs:     cfg.fs(),
		cfg:    cfg,
		schema: schema,
		m:      cfg.metrics(),
		seg:    table.NewBuilder(schema, 0),
	}
}

func (d *Dataset) openManifestHandle() error {
	f, err := d.fs.OpenAppend(filepath.Join(d.dir, manifestName))
	if err != nil {
		return err
	}
	// After a truncation, make the new length durable before appending.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	d.manifest = f
	return nil
}

// gc removes every file in the directory that is neither the manifest
// nor a live partition, then syncs the directory so removals are
// durable before any new sequence number can be reissued.
func (d *Dataset) gc(live []sealRecord) error {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return err
	}
	keep := map[string]bool{manifestName: true}
	for _, rec := range live {
		keep[rec.Name] = true
	}
	removed := 0
	for _, name := range names {
		if keep[name] {
			continue
		}
		if err := d.fs.Remove(filepath.Join(d.dir, name)); err != nil {
			return fmt.Errorf("ingest: gc %s: %w", name, err)
		}
		removed++
	}
	if removed > 0 {
		if err := d.fs.SyncDir(d.dir); err != nil {
			return err
		}
		d.m.OrphansRemoved.Add(int64(removed))
	}
	return nil
}

// writeFileAtomic writes content through fn into tmp, fsyncs it,
// renames it to final, and fsyncs the directory.
func writeFileAtomic(fsys FS, tmp, final string, fn func(File) error) error {
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := fn(f); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return err
	}
	return fsys.SyncDir(dirOf(final))
}

// Dir returns the dataset directory.
func (d *Dataset) Dir() string { return d.dir }

// Name returns the dataset name (the directory base name), the prefix
// of every partition table ID.
func (d *Dataset) Name() string { return d.name }

// Schema returns the fixed dataset schema.
func (d *Dataset) Schema() *table.Schema { return d.schema }

// Generation counts durable mutations of the live set; it starts at
// the recovered seal count and increments per seal.
func (d *Dataset) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// OpenRows returns the rows buffered in the open segment (not durable).
func (d *Dataset) OpenRows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.segRows
}

// Partitions returns the live sealed partitions in seal order.
func (d *Dataset) Partitions() []Partition {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.partitionsLocked()
}

func (d *Dataset) partitionsLocked() []Partition {
	out := make([]Partition, len(d.seals))
	for i, rec := range d.seals {
		out[i] = Partition{Seq: rec.Seq, Name: rec.Name, Rows: rec.Rows}
	}
	return out
}

// partID is the stable table ID of a sealed partition.
func (d *Dataset) partID(name string) string {
	return d.name + "/" + strings.TrimSuffix(name, ".hvc")
}

// loadPartition reads one sealed partition back as an immutable table
// with its stable ID, validating structure and CRCs.
func (d *Dataset) loadPartition(rec sealRecord) (*table.Table, error) {
	data, err := d.fs.ReadFile(filepath.Join(d.dir, rec.Name))
	if err != nil {
		return nil, err
	}
	t, err := colstore.ReadHVC2Bytes(data, d.partID(rec.Name), nil)
	if err != nil {
		return nil, err
	}
	if t.NumRows() != rec.Rows {
		return nil, fmt.Errorf("ingest: %s has %d rows, manifest says %d", rec.Name, t.NumRows(), rec.Rows)
	}
	return t, nil
}

// Load materializes every live partition, in seal order. The returned
// tables are immutable and bit-identical across calls (stable IDs,
// stable bytes), which is the property the engine's determinism
// contract needs from a leaf source.
func (d *Dataset) Load() ([]*table.Table, error) {
	d.mu.Lock()
	seals := append([]sealRecord(nil), d.seals...)
	d.mu.Unlock()
	out := make([]*table.Table, len(seals))
	for i, rec := range seals {
		t, err := d.loadPartition(rec)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// schemaMatches checks an appended batch against the dataset schema.
func (d *Dataset) schemaMatches(s *table.Schema) error {
	if !schemasEqual(d.schema, s) {
		return fmt.Errorf("ingest: batch schema does not match dataset %s", d.name)
	}
	return nil
}

func schemasEqual(a, b *table.Schema) bool {
	if a.NumColumns() != b.NumColumns() {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	return true
}

// Append buffers the member rows of one batch into the open segment,
// sealing automatically when the segment reaches the configured
// threshold. Buffered rows are volatile until sealed.
func (d *Dataset) Append(ctx context.Context, t *table.Table) error {
	if err := d.schemaMatches(t.Schema()); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	added := 0
	t.Members().Iterate(func(i int) bool {
		d.seg.AppendRow(t.GetRow(i))
		added++
		return true
	})
	d.segRows += added
	d.m.Appends.Inc()
	d.m.AppendedRows.Add(int64(added))
	d.m.OpenSegmentRows.Add(int64(added))
	return d.maybeAutoSealLocked(ctx)
}

// AppendRows buffers explicit rows (the HTTP ingestion path).
func (d *Dataset) AppendRows(ctx context.Context, rows []table.Row) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != d.schema.NumColumns() {
			return fmt.Errorf("ingest: row width %d != schema width %d", len(row), d.schema.NumColumns())
		}
		d.seg.AppendRow(row)
	}
	d.segRows += len(rows)
	d.m.Appends.Inc()
	d.m.AppendedRows.Add(int64(len(rows)))
	d.m.OpenSegmentRows.Add(int64(len(rows)))
	return d.maybeAutoSealLocked(ctx)
}

func (d *Dataset) usableLocked() error {
	if d.closed {
		return fmt.Errorf("ingest: dataset %s is closed", d.name)
	}
	return d.failed
}

func (d *Dataset) maybeAutoSealLocked(ctx context.Context) error {
	if max := d.cfg.segmentRows(); max > 0 && d.segRows >= max {
		_, err := d.sealLocked(ctx)
		return err
	}
	return nil
}

// Seal makes the open segment durable as one immutable partition,
// returning its descriptor — or (nil, nil) when nothing is buffered.
func (d *Dataset) Seal(ctx context.Context) (*Partition, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return nil, err
	}
	return d.sealLocked(ctx)
}

func (d *Dataset) sealLocked(ctx context.Context) (*Partition, error) {
	if d.segRows == 0 {
		return nil, nil
	}
	start := time.Now()
	tr := obs.TraceFrom(ctx)
	sp := tr.StartSpan("ingest.seal")

	seq := uint64(len(d.seals)) + 1
	name := partName(seq)
	t := d.seg.Freeze(d.partID(name))
	final := filepath.Join(d.dir, name)
	if err := writeFileAtomic(d.fs, final+tmpSuffix, final, func(f File) error {
		return colstore.WriteHVC2To(f, t)
	}); err != nil {
		// The rows stay buffered (Freeze consumed the builder, so rebuild
		// it from the frozen table); any file left behind is unreferenced,
		// hence invisible and swept by the next recovery.
		d.seg = rebuildSegment(d.schema, t)
		sp.EndNote("error")
		return nil, fmt.Errorf("ingest: sealing %s: %w", name, err)
	}
	rec := sealRecord{Seq: seq, Rows: t.NumRows(), Name: name}
	if err := d.commitRecordLocked(rec); err != nil {
		// The manifest handle is in an unknown state (a torn record may
		// be on disk): fail the dataset; reopening runs recovery, which
		// truncates the tear and sweeps the orphaned partition file.
		d.failed = fmt.Errorf("ingest: manifest append for %s failed: %w", name, err)
		sp.EndNote("error")
		return nil, d.failed
	}
	d.seals = append(d.seals, rec)
	d.gen++
	d.m.Seals.Inc()
	d.m.SealedRows.Add(int64(rec.Rows))
	d.m.LivePartitions.Add(1)
	d.m.OpenSegmentRows.Add(int64(-d.segRows))
	d.m.SealLatency.ObserveSince(start)
	d.seg = table.NewBuilder(d.schema, 0)
	d.segRows = 0

	p := Partition{Seq: rec.Seq, Name: rec.Name, Rows: rec.Rows}
	d.updateStandingLocked(ctx, rec)
	sp.EndNote(fmt.Sprintf("%s rows=%d", name, rec.Rows))
	if d.cfg.OnSeal != nil {
		d.cfg.OnSeal(p)
	}
	return &p, nil
}

// rebuildSegment reconstitutes an open-segment builder from a frozen
// table: Freeze consumes the builder, so a seal that fails after Freeze
// rebuilds the buffer to keep the rows appendable.
func rebuildSegment(schema *table.Schema, t *table.Table) *table.Builder {
	b := table.NewBuilder(schema, t.NumRows())
	t.Members().Iterate(func(i int) bool {
		b.AppendRow(t.GetRow(i))
		return true
	})
	return b
}

// commitRecordLocked appends one framed record to the manifest and
// makes it durable — the commit point of a seal.
func (d *Dataset) commitRecordLocked(rec sealRecord) error {
	if _, err := d.manifest.Write(frameRecord(encodeSealRecord(rec))); err != nil {
		return err
	}
	return d.manifest.Sync()
}

// Close seals any buffered rows (graceful shutdown keeps them) and
// releases the manifest handle. A dataset in the failed state closes
// without sealing.
func (d *Dataset) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	var err error
	if d.failed == nil {
		_, err = d.sealLocked(context.Background())
	}
	d.closed = true
	if d.manifest != nil {
		if cerr := d.manifest.Close(); err == nil {
			err = cerr
		}
	}
	d.m.LivePartitions.Add(int64(-len(d.seals)))
	d.m.OpenSegmentRows.Add(int64(-d.segRows))
	return err
}
