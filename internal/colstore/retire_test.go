package colstore

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/table"
)

// hookLoader is intLoader plus an evict hook counting how many times
// the pool released the column's backing pages.
func hookLoader(n int, seed int64, loads, releases *atomic.Int64) Loader {
	return func() (table.Column, int64, func(), error) {
		loads.Add(1)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = seed + int64(i)
		}
		return table.NewIntColumn(table.KindInt, vals, nil), int64(8 * n), func() { releases.Add(1) }, nil
	}
}

// TestPoolInvalidateRetiresSource pins the partition-retirement
// contract: dropping one source from the live set frees exactly its
// resident bytes, fires each column's page-release hook once, and
// leaves every other source untouched and hot.
func TestPoolInvalidateRetiresSource(t *testing.T) {
	p := NewPool(0) // unlimited: only retirement may evict
	var loads, oldReleases, keepReleases atomic.Int64
	for _, name := range []string{"a", "b"} {
		_, r, err := p.Acquire(ColKey{"old", name}, hookLoader(100, 1, &loads, &oldReleases))
		if err != nil {
			t.Fatal(err)
		}
		r()
	}
	_, rKeep, err := p.Acquire(ColKey{"keep", "a"}, hookLoader(50, 2, &loads, &keepReleases))
	if err != nil {
		t.Fatal(err)
	}
	rKeep()
	if s := p.Stats(); s.Resident != 2*800+400 || s.Columns != 3 {
		t.Fatalf("setup: %v", s)
	}

	if pinnedLeft := p.Invalidate("old"); pinnedLeft {
		t.Fatal("Invalidate reported pinned columns; none were pinned")
	}
	s := p.Stats()
	if s.Resident != 400 || s.Columns != 1 {
		t.Fatalf("retired source still charged: %v", s)
	}
	if got := oldReleases.Load(); got != 2 {
		t.Fatalf("retired source released %d column hooks, want 2", got)
	}
	if got := keepReleases.Load(); got != 0 {
		t.Fatalf("surviving source's pages were released %d times", got)
	}

	// The surviving source is still hot; the retired one reloads.
	if _, r, err := p.Acquire(ColKey{"keep", "a"}, hookLoader(50, 2, &loads, &keepReleases)); err != nil {
		t.Fatal(err)
	} else {
		r()
	}
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("surviving source was not a hit: %v", s)
	}
	if _, r, err := p.Acquire(ColKey{"old", "a"}, hookLoader(100, 1, &loads, &oldReleases)); err != nil {
		t.Fatal(err)
	} else {
		r()
	}
	if got := loads.Load(); got != 4 {
		t.Fatalf("loader ran %d times, want 4 (a,b,keep + reload of retired a)", got)
	}
}

// TestPoolInvalidatePinnedSurvives pins the in-use half: a scan
// holding a column of a retired partition keeps it alive (soft-state
// contract — the scan must finish against the snapshot it pinned), the
// pool reports the survivor, and a second retirement after the pin
// releases completes the cleanup.
func TestPoolInvalidatePinnedSurvives(t *testing.T) {
	p := NewPool(0)
	var loads, releases atomic.Int64
	col, release, err := p.Acquire(ColKey{"old", "a"}, hookLoader(100, 7, &loads, &releases))
	if err != nil {
		t.Fatal(err)
	}

	if pinnedLeft := p.Invalidate("old"); !pinnedLeft {
		t.Fatal("Invalidate did not report the pinned column")
	}
	if releases.Load() != 0 {
		t.Fatal("pinned column's pages were released mid-scan")
	}
	// The pinned column still reads correctly.
	if got := col.(*table.IntColumn).Ints()[0]; got != 7 {
		t.Fatalf("pinned column corrupted after Invalidate: first value %d", got)
	}

	release()
	if pinnedLeft := p.Invalidate("old"); pinnedLeft {
		t.Fatal("second Invalidate after release still reports a pin")
	}
	if releases.Load() != 1 {
		t.Fatalf("retired column's hook ran %d times, want exactly 1", releases.Load())
	}
	if s := p.Stats(); s.Resident != 0 || s.Columns != 0 {
		t.Fatalf("retired source left residue: %v", s)
	}
}

// TestPoolInvalidateMappedFile retires a real mapped partition file:
// every mapped column's pages are unmapped, the budget frees, and a
// fresh file at the same path (same source key) serves the new bytes.
func TestPoolInvalidateMappedFile(t *testing.T) {
	src := testTable(t, 500)
	path := writeTemp(t, src)
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(0)
	acquireAll := func(f *File) map[string][]table.Value {
		vals := map[string][]table.Value{}
		for ci := 0; ci < f.Schema().NumColumns(); ci++ {
			name := f.Schema().Columns[ci].Name
			ci := ci
			col, release, err := p.Acquire(ColKey{f.Path(), name}, func() (table.Column, int64, func(), error) {
				return f.Column(ci)
			})
			if err != nil {
				t.Fatal(err)
			}
			vs := make([]table.Value, col.Len())
			for i := range vs {
				vs[i] = col.Value(i)
			}
			vals[name] = vs
			release()
		}
		return vals
	}
	before := acquireAll(f)
	if s := p.Stats(); s.Resident == 0 {
		t.Fatalf("mapped columns not charged: %v", s)
	}

	if pinnedLeft := p.Invalidate(f.Path()); pinnedLeft {
		t.Fatal("Invalidate reported pins; all columns were released")
	}
	if s := p.Stats(); s.Resident != 0 || s.Columns != 0 {
		t.Fatalf("mapped pages still charged after retirement: %v", s)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after retirement: %v", err)
	}

	// Reopen and reload through the same keys: bit-identical values.
	f2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	after := acquireAll(f2)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("reloaded mapped columns differ after retirement cycle")
	}
}
