package colstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/table"
)

// testTable builds a table covering every stored kind with missing
// values in every column.
func testTable(tb testing.TB, rows int) *table.Table {
	tb.Helper()
	schema := table.NewSchema(
		table.ColumnDesc{Name: "i", Kind: table.KindInt},
		table.ColumnDesc{Name: "d", Kind: table.KindDouble},
		table.ColumnDesc{Name: "s", Kind: table.KindString},
		table.ColumnDesc{Name: "t", Kind: table.KindDate},
	)
	b := table.NewBuilder(schema, rows)
	words := []string{"ant", "bee", "cat", "dog", "emu"}
	for i := 0; i < rows; i++ {
		row := table.Row{
			table.IntValue(int64(i*13 - 7)),
			table.DoubleValue(float64(i) * 0.75),
			table.StringValue(words[i%len(words)]),
			table.Value{Kind: table.KindDate, I: 1500000000000 + int64(i)*60000},
		}
		if i%7 == 3 {
			row[i%4] = table.MissingValue(row[i%4].Kind)
		}
		b.AppendRow(row)
	}
	return b.Freeze("fmt-test")
}

// assertSameRows checks got holds exactly the member rows of want, in
// member order, value for value.
func assertSameRows(t *testing.T, want, got *table.Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: got %d, want %d", got.NumRows(), want.NumRows())
	}
	if !want.Schema().Equal(got.Schema()) {
		t.Fatalf("schema: got %v, want %v", got.Schema(), want.Schema())
	}
	wantRows := want.Rows()
	gotRows := got.Rows()
	for i := range wantRows {
		for c := range wantRows[i] {
			if !reflect.DeepEqual(wantRows[i][c], gotRows[i][c]) {
				t.Fatalf("row %d col %d: got %+v, want %+v", i, c, gotRows[i][c], wantRows[i][c])
			}
		}
	}
}

func writeTemp(t *testing.T, tbl *table.Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.hvc")
	if err := WriteHVC2(path, tbl); err != nil {
		t.Fatalf("WriteHVC2: %v", err)
	}
	return path
}

func TestHVC2RoundTripMapped(t *testing.T) {
	src := testTable(t, 301)
	f, err := OpenFile(writeTemp(t, src))
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if f.Rows() != src.NumRows() {
		t.Fatalf("rows: got %d, want %d", f.Rows(), src.NumRows())
	}
	cols := make([]table.Column, f.Schema().NumColumns())
	for i := range cols {
		col, size, evict, err := f.Column(i)
		if err != nil {
			t.Fatalf("column %d: %v", i, err)
		}
		if size <= 0 {
			t.Fatalf("column %d: size %d", i, size)
		}
		cols[i] = col
		// Page release must be safe while the column is referenced.
		evict()
	}
	got := table.New("rt", f.Schema(), cols, table.FullMembership(f.Rows()))
	assertSameRows(t, src, got)
}

func TestHVC2RoundTripBytes(t *testing.T) {
	src := testTable(t, 97)
	var buf bytes.Buffer
	if err := WriteHVC2To(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHVC2Bytes(buf.Bytes(), "rt", nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, src, got)

	// Column subset, out of schema order.
	sub, err := ReadHVC2Bytes(buf.Bytes(), "rt", []string{"s", "i"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := src.Project("rt", []string{"s", "i"})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, want, sub)
}

// TestHVC2FlattensFilteredViews pins the dense-file contract: a
// filtered view writes only member rows, and string dictionaries shrink
// to the values that actually occur (still sorted).
func TestHVC2FlattensFilteredViews(t *testing.T) {
	src := testTable(t, 200).Filter("f", func(row int) bool { return row%3 == 0 })
	var buf bytes.Buffer
	if err := WriteHVC2To(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHVC2Bytes(buf.Bytes(), "f", nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, src, got)
	sc := got.MustColumn("s").(*table.StringColumn)
	for i := 1; i < sc.DictSize(); i++ {
		if sc.Dict()[i-1] >= sc.Dict()[i] {
			t.Fatalf("reloaded dictionary not sorted at %d: %q >= %q", i, sc.Dict()[i-1], sc.Dict()[i])
		}
	}
}

func TestHVC2ComputedAndAllMissing(t *testing.T) {
	n := 50
	comp := table.NewComputedColumn(table.KindString, n, func(i int) table.Value {
		if i%5 == 0 {
			return table.MissingValue(table.KindString)
		}
		return table.StringValue([]string{"zz", "aa", "mm"}[i%3])
	})
	allMissing := table.NewComputedColumn(table.KindString, n, func(i int) table.Value {
		return table.MissingValue(table.KindString)
	})
	schema := table.NewSchema(
		table.ColumnDesc{Name: "c", Kind: table.KindString},
		table.ColumnDesc{Name: "m", Kind: table.KindString},
	)
	src := table.New("comp", schema, []table.Column{comp, allMissing}, table.FullMembership(n))
	var buf bytes.Buffer
	if err := WriteHVC2To(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHVC2Bytes(buf.Bytes(), "comp", nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, src, got)
}

func TestHVC2EmptyTables(t *testing.T) {
	empty := table.NewBuilder(table.NewSchema(), 0).Freeze("empty")
	var buf bytes.Buffer
	if err := WriteHVC2To(&buf, empty); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHVC2Bytes(buf.Bytes(), "empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema().NumColumns() != 0 || got.NumRows() != 0 {
		t.Fatalf("got %d cols, %d rows", got.Schema().NumColumns(), got.NumRows())
	}

	// Zero rows, nonzero columns.
	zero := testTable(t, 10).Filter("z", func(int) bool { return false })
	buf.Reset()
	if err := WriteHVC2To(&buf, zero); err != nil {
		t.Fatal(err)
	}
	got, err = ReadHVC2Bytes(buf.Bytes(), "z", nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, zero, got)
}

// TestHVC2CRCDetectsCorruption flips one payload byte in every block in
// turn and demands the reader refuse that column.
func TestHVC2CRCDetectsCorruption(t *testing.T) {
	src := testTable(t, 64)
	var buf bytes.Buffer
	if err := WriteHVC2To(&buf, src); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	h, err := parseV2(clean)
	if err != nil {
		t.Fatal(err)
	}
	for ci, d := range h.dir {
		data := append([]byte(nil), clean...)
		data[d.off+blockHeader+3] ^= 0x40 // inside the payload
		name := h.schema.Columns[ci].Name
		if _, err := ReadHVC2Bytes(data, "corrupt", []string{name}); err == nil {
			t.Errorf("column %q: corrupted payload decoded without error", name)
		}
		// Other columns remain readable.
		other := h.schema.Columns[(ci+1)%len(h.dir)].Name
		if _, err := ReadHVC2Bytes(data, "ok", []string{other}); err != nil {
			t.Errorf("column %q: unrelated corruption rejected it: %v", other, err)
		}
	}
}

// TestHVC2TruncationDetected cuts the file at various points.
func TestHVC2TruncationDetected(t *testing.T) {
	src := testTable(t, 128)
	var buf bytes.Buffer
	if err := WriteHVC2To(&buf, src); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for _, cut := range []int{0, 3, 15, 40, len(clean) / 2, len(clean) - 5} {
		if _, err := ReadHVC2Bytes(clean[:cut], "trunc", nil); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
}

// TestMappedColumnsAreConcreteTypes pins the kernel contract: mapped
// columns must be the concrete table column types the vectorized
// kernels type-switch on.
func TestMappedColumnsAreConcreteTypes(t *testing.T) {
	f, err := OpenFile(writeTemp(t, testTable(t, 80)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, want := range []string{"*table.IntColumn", "*table.DoubleColumn", "*table.StringColumn", "*table.IntColumn"} {
		col, _, _, err := f.Column(i)
		if err != nil {
			t.Fatal(err)
		}
		if got := reflect.TypeOf(col).String(); got != want {
			t.Errorf("column %d: type %s, want %s", i, got, want)
		}
	}
}

// TestMappedScanZeroAlloc pins the acceptance criterion: scanning
// fixed-width mapped columns through the typed bulk accessors performs
// zero allocations per pass.
func TestMappedScanZeroAlloc(t *testing.T) {
	f, err := OpenFile(writeTemp(t, testTable(t, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ic, _, _, err := f.Column(0)
	if err != nil {
		t.Fatal(err)
	}
	dc, _, _, err := f.Column(1)
	if err != nil {
		t.Fatal(err)
	}
	sc, _, _, err := f.Column(2)
	if err != nil {
		t.Fatal(err)
	}
	ints := ic.(*table.IntColumn)
	doubles := dc.(*table.DoubleColumn)
	codes := sc.(*table.StringColumn)
	var sinkI int64
	var sinkD float64
	allocs := testing.AllocsPerRun(50, func() {
		for _, v := range ints.Ints() {
			sinkI += v
		}
		m := ints.MissingMask()
		if m != nil {
			sinkI += int64(m.Count())
		}
		for _, v := range doubles.Doubles() {
			sinkD += v
		}
		for _, c := range codes.Codes() {
			sinkI += int64(c)
		}
	})
	if allocs != 0 {
		t.Fatalf("mapped fixed-width scan allocated %.1f times per pass, want 0", allocs)
	}
	_ = sinkD
}

// TestHVC2ZeroColumnRowBound pins the header guard for the degenerate
// zero-column case: a crafted 16-byte image declaring 0 columns and
// 2^62 rows must be rejected (a phantom row count would drive
// 2^62-iteration loops in whole-table consumers), while the writer's
// real zero-column output keeps round-tripping.
func TestHVC2ZeroColumnRowBound(t *testing.T) {
	bad := make([]byte, 16)
	copy(bad, magicV2)
	bad[8] = 0 // numCols = 0
	for i, b := range []byte{0, 0, 0, 0, 0, 0, 0, 0x40} {
		bad[8+i] = b // numRows = 1<<62
	}
	if _, err := ReadHVC2Bytes(bad, "bad", nil); err == nil {
		t.Fatal("zero-column header with 2^62 rows decoded without error")
	}
}

// TestHVC2NotV2 pins the sentinel for version dispatch.
func TestHVC2NotV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.hvc")
	if err := os.WriteFile(path, []byte("HVC1junkjunkjunkjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted a v1 file")
	}
	if IsHVC2Magic([]byte("HVC1xxxx")) {
		t.Fatal("IsHVC2Magic accepted v1 magic")
	}
	if !IsHVC2Magic([]byte(magicV2 + "xxxx")) {
		t.Fatal("IsHVC2Magic rejected v2 magic")
	}
}
