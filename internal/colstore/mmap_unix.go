//go:build linux || darwin || freebsd || netbsd || openbsd

package colstore

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build serves files by memory
// mapping; when false, File falls back to reading the file into the
// heap (correct, not zero-copy-from-disk).
const mmapSupported = true

// mmapFile maps the whole file read-only and shared: the mapping is
// backed by the page cache, so unread columns cost address space, not
// memory, and released pages fault back in from the immutable file.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}

// releasePages tells the OS the page-aligned extent of b[lo:hi] is not
// needed; on a read-only shared file mapping MADV_DONTNEED is
// non-destructive — a later access transparently re-reads the file.
// Best-effort: errors are ignored (eviction is advisory).
func releasePages(b []byte, lo, hi int64) {
	if len(b) == 0 || hi <= lo {
		return
	}
	page := int64(os.Getpagesize())
	// Round inward so partial pages shared with a live neighbor block
	// are kept resident.
	lo = (lo + page - 1) / page * page
	hi = hi / page * page
	if hi <= lo || hi > int64(len(b)) {
		return
	}
	_ = syscall.Madvise(b[lo:hi], syscall.MADV_DONTNEED)
}
