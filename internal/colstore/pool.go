package colstore

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/table"
)

// ColKey identifies one column of one source in the pool.
type ColKey struct {
	Source string // file path or other stable source identifier
	Column string
}

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	Hits      int64 // Acquire found the column resident
	Misses    int64 // Acquire ran the loader
	Evictions int64 // columns evicted to fit the budget (or EvictAll)
	Resident  int64 // bytes currently charged
	Budget    int64 // configured budget (0 = unlimited)
	Columns   int   // resident columns
	Pinned    int   // columns with at least one active pin
}

// entry is one materialized column. pins counts concurrent holders;
// only unpinned entries are evictable. ready closes when loading
// finishes (successfully or not), serializing concurrent loads of the
// same column behind one loader call.
type entry struct {
	key   ColKey
	col   table.Column
	bytes int64
	evict func() // optional OS-page release hook
	pins  int
	ready chan struct{}
	elem  *list.Element
}

// Pool is the budgeted buffer pool of the column store: it
// materializes columns lazily on first Acquire, keeps them resident
// for reuse, pins them while callers hold them, and evicts
// least-recently-used unpinned columns once resident bytes exceed the
// budget. Pinned bytes may transiently exceed the budget — a scan's
// working set is never evicted under it — and shrink back as pins
// release. Eviction is transparent: the loader re-materializes a
// bit-identical column from the immutable source on the next touch,
// which is the column-level instance of the engine's soft-state
// contract (paper §5.7).
type Pool struct {
	mu       sync.Mutex
	budget   int64
	cols     map[ColKey]*entry
	lru      *list.List // front = most recently used; entries in load order
	hits     int64
	misses   int64
	evicted  int64
	resident int64
}

// NewPool builds a pool with the given byte budget (0 or negative =
// unlimited: columns stay resident until EvictAll).
func NewPool(budget int64) *Pool {
	if budget < 0 {
		budget = 0
	}
	return &Pool{budget: budget, cols: make(map[ColKey]*entry), lru: list.New()}
}

// SetBudget replaces the budget and evicts down to it.
func (p *Pool) SetBudget(budget int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if budget < 0 {
		budget = 0
	}
	p.budget = budget
	p.evictLocked()
}

// Loader materializes one column, returning the column, its resident
// byte size, and an optional evict hook invoked when the pool drops the
// column (mapped columns release their OS pages there). The load must
// be deterministic: re-running it after an eviction must produce a
// bit-identical column.
type Loader func() (table.Column, int64, func(), error)

// Acquire returns the column for key, materializing it with load on a
// miss, and pins it until the returned release function is called
// (exactly once). Concurrent Acquires of the same key share one load.
func (p *Pool) Acquire(key ColKey, load Loader) (table.Column, func(), error) {
	for {
		p.mu.Lock()
		if e, ok := p.cols[key]; ok {
			select {
			case <-e.ready:
				// Resident: a failed load is removed from the map before
				// its ready channel closes (under this mutex), so a
				// map-resident ready entry always holds a column.
				e.pins++
				p.lru.MoveToFront(e.elem)
				p.hits++
				p.mu.Unlock()
				return e.col, p.releaseFunc(e), nil
			default:
				// Load in flight: wait outside the lock, then re-check —
				// if that load failed its entry is gone and this caller
				// retries with its own loader.
				p.mu.Unlock()
				<-e.ready
				continue
			}
		}
		e := &entry{key: key, ready: make(chan struct{})}
		p.cols[key] = e
		p.misses++
		p.mu.Unlock()

		col, size, evict, err := load()
		p.mu.Lock()
		if err != nil {
			delete(p.cols, key)
			close(e.ready)
			p.mu.Unlock()
			return nil, nil, err
		}
		e.col, e.bytes, e.evict = col, size, evict
		e.pins = 1
		e.elem = p.lru.PushFront(e)
		p.resident += size
		close(e.ready)
		p.evictLocked()
		p.mu.Unlock()
		return col, p.releaseFunc(e), nil
	}
}

func (p *Pool) releaseFunc(e *entry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			e.pins--
			if e.pins == 0 {
				p.evictLocked()
			}
			p.mu.Unlock()
		})
	}
}

// evictLocked drops least-recently-used unpinned columns until the
// budget is met. Callers hold p.mu.
func (p *Pool) evictLocked() {
	if p.budget <= 0 {
		return
	}
	for el := p.lru.Back(); el != nil && p.resident > p.budget; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.pins == 0 {
			p.dropLocked(e)
		}
		el = prev
	}
}

// dropLocked removes one resident entry. Callers hold p.mu.
func (p *Pool) dropLocked(e *entry) {
	p.lru.Remove(e.elem)
	delete(p.cols, e.key)
	p.resident -= e.bytes
	p.evicted++
	if e.evict != nil {
		e.evict()
	}
}

// EvictAll drops every unpinned column regardless of budget and
// returns how many were dropped. Tests use it to force the
// evict-then-reload path; a server can use it as a memory-pressure
// valve.
func (p *Pool) EvictAll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for el := p.lru.Back(); el != nil; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.pins == 0 {
			p.dropLocked(e)
			n++
		}
		el = prev
	}
	return n
}

// Invalidate drops every unpinned column of one source (e.g. after the
// file is replaced) and reports whether any pinned column survived.
func (p *Pool) Invalidate(source string) (pinnedLeft bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Back(); el != nil; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.key.Source == source {
			if e.pins == 0 {
				p.dropLocked(e)
			} else {
				pinnedLeft = true
			}
		}
		el = prev
	}
	return pinnedLeft
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evicted,
		Resident:  p.resident,
		Budget:    p.budget,
		Columns:   len(p.cols),
	}
	for _, e := range p.cols {
		if e.pins > 0 {
			s.Pinned++
		}
	}
	return s
}

// String renders the stats snapshot for logs.
func (s PoolStats) String() string {
	return fmt.Sprintf("pool{resident=%d/%d cols=%d pinned=%d hits=%d misses=%d evictions=%d}",
		s.Resident, s.Budget, s.Columns, s.Pinned, s.Hits, s.Misses, s.Evictions)
}
