package colstore

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the host stores integers
// little-endian — the precondition for reinterpreting HVC2 payload
// bytes as typed slices. On a big-endian host every view helper falls
// back to an allocating decode, which keeps results correct at the
// cost of the zero-copy property.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aligned8 reports whether the first byte of b sits on an 8-byte
// boundary. Blocks are 64-byte aligned in the file and mappings are
// page-aligned, so this holds for every mapped payload; it can fail
// for payloads inside an arbitrary in-memory image (ReadHVC2Bytes on a
// sub-slice), which then take the decode path.
func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(unsafe.SliceData(b)))&7 == 0
}

// int64View reinterprets b as n little-endian int64 values, zero-copy
// when the host allows it.
func int64View(b []byte, n int) []int64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// float64View reinterprets b as n little-endian float64 values.
func float64View(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// int32View reinterprets b as n little-endian int32 values.
func int32View(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && (len(b) == 0 || uintptr(unsafe.Pointer(unsafe.SliceData(b)))&3 == 0) {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// uint64View reinterprets b as n little-endian uint64 words (missing
// bitmaps).
func uint64View(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// int64Bytes returns the little-endian byte image of v — zero-copy on
// little-endian hosts, an allocating encode otherwise. The writer uses
// it to emit fixed-width payloads in bulk.
func int64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 8*len(v))
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// float64Bytes returns the little-endian byte image of v.
func float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 8*len(v))
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// int32Bytes returns the little-endian byte image of v.
func int32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 4*len(v))
	}
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

// uint64Bytes returns the little-endian byte image of v.
func uint64Bytes(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), 8*len(v))
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], x)
	}
	return out
}
