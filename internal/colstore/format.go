package colstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/table"
)

// HVC2 is the mmap-native second version of the repository's columnar
// file format. Like HVC1 it stores independently addressable column
// blocks behind a schema header; unlike HVC1 every fixed-width payload
// is raw little-endian and 64-byte aligned so a mapped block
// reinterprets directly as a typed slice, and every block carries a
// CRC32-C so a truncated or corrupted column surfaces as an error, not
// as silently wrong data.
//
// Layout (integers little-endian; uvarint is Go's encoding/binary):
//
//	magic    "HVC2"            // byte 3 is the format version
//	numCols  uint32
//	numRows  uint64
//	numCols × { nameLen uvarint, name bytes, kind byte }
//	numCols × { blockOff uint64, blockLen uint64 }   // the directory
//	pad to 64
//	numCols × column block (each 64-byte aligned)
//
// Column block (blockLen covers everything including the trailer):
//
//	fixed 64-byte header:
//	  payloadOff uint64   // relative to block start; 64-byte aligned
//	  payloadLen uint64   // rows×8 (int/date/double) or rows×4 (codes)
//	  missingOff uint64   // 0 when no row is missing; 64-byte aligned
//	  missingLen uint64   // ceil(rows/64)×8
//	  dictOff    uint64   // 0 for non-string columns
//	  dictLen    uint64   // bytes of dict section
//	  dictCount  uint64   // dictionary entries
//	  reserved   uint64   // must be 0
//	payload bytes, pad to 64
//	missing bitmap words, pad to 64
//	dict section: dictCount × { len uvarint, bytes }, sorted ascending
//	crc32c   uint32       // over block[0 : blockLen-4]
//
// Files always hold dense tables: the writer flattens filtered views to
// their member rows, missing cells store canonical zero values, and
// string dictionaries contain exactly the values that occur, sorted, so
// re-reading reconstructs the column store's in-memory invariants
// (sorted dictionaries, code order = lexicographic order) with no
// re-encoding.
const (
	magicV2     = "HVC2"
	blockHeader = 64
	blockAlign  = 64
)

// crcTable is CRC32-C (Castagnoli), hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNotHVC2 reports that a file is not in the v2 format (the storage
// layer falls back to the HVC1 decode path).
var ErrNotHVC2 = errors.New("colstore: not an HVC2 file")

func pad64(n int64) int64 { return (n + blockAlign - 1) &^ (blockAlign - 1) }

// WriteHVC2 stores the member rows of t at path in the HVC2 layout.
func WriteHVC2(path string, t *table.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteHVC2To(f, t); err != nil {
		return err
	}
	return f.Close()
}

// colPlan is the precomputed geometry of one column block. String
// payloads (codes, dict) are materialized during planning; numeric
// payloads are gathered one column at a time while writing.
type colPlan struct {
	kind      table.Kind
	missing   *table.Bitset // over output rows; nil when none missing
	codes     []int32       // string columns only
	dictBytes []byte
	dictCount int

	payloadLen, missingLen, dictLen int64
	blockOff, blockLen              int64
}

// WriteHVC2To writes the HVC2 encoding of t's member rows.
func WriteHVC2To(w io.Writer, t *table.Table) error {
	schema := t.Schema()
	rows := t.NumRows()

	plans := make([]*colPlan, schema.NumColumns())
	for c := range plans {
		p, err := planColumn(t, c, rows)
		if err != nil {
			return err
		}
		plans[c] = p
	}

	// Header + directory, then assign aligned block offsets.
	var head bytes.Buffer
	head.WriteString(magicV2)
	binary.Write(&head, binary.LittleEndian, uint32(schema.NumColumns()))
	binary.Write(&head, binary.LittleEndian, uint64(rows))
	for _, cd := range schema.Columns {
		writeUvarint(&head, uint64(len(cd.Name)))
		head.WriteString(cd.Name)
		head.WriteByte(byte(cd.Kind))
	}
	off := pad64(int64(head.Len()) + 16*int64(len(plans)))
	for _, p := range plans {
		p.blockOff = off
		payloadEnd := int64(blockHeader) + p.payloadLen
		missingEnd := pad64(payloadEnd) + p.missingLen
		p.blockLen = pad64(missingEnd) + p.dictLen + 4 // + crc trailer
		off = pad64(p.blockOff + p.blockLen)
	}
	for _, p := range plans {
		binary.Write(&head, binary.LittleEndian, uint64(p.blockOff))
		binary.Write(&head, binary.LittleEndian, uint64(p.blockLen))
	}
	headPad := pad64(int64(head.Len())) - int64(head.Len())
	if _, err := w.Write(head.Bytes()); err != nil {
		return err
	}
	if err := writeZeros(w, headPad); err != nil {
		return err
	}

	written := pad64(int64(head.Len()))
	var block bytes.Buffer
	for c, p := range plans {
		block.Reset()
		if err := encodeBlockV2(&block, t, c, rows, p); err != nil {
			return err
		}
		crc := crc32.Checksum(block.Bytes(), crcTable)
		binary.Write(&block, binary.LittleEndian, crc)
		if int64(block.Len()) != p.blockLen {
			return fmt.Errorf("colstore: internal: block %d is %d bytes, planned %d", c, block.Len(), p.blockLen)
		}
		if err := writeZeros(w, p.blockOff-written); err != nil {
			return err
		}
		if _, err := w.Write(block.Bytes()); err != nil {
			return err
		}
		written = p.blockOff + p.blockLen
	}
	return nil
}

// planColumn computes block geometry and materializes the small parts
// (missing bitmap, string codes and dictionary) of column c.
func planColumn(t *table.Table, c, rows int) (*colPlan, error) {
	col := t.ColumnAt(c)
	p := &colPlan{kind: col.Kind()}

	// Missing bitmap over output row positions.
	missing := table.NewBitset(rows)
	hasMissing := false
	pos := 0
	t.Members().Iterate(func(row int) bool {
		if col.Missing(row) {
			missing.Set(pos)
			hasMissing = true
		}
		pos++
		return true
	})
	if hasMissing {
		p.missing = missing
		p.missingLen = 8 * int64(len(missing.Words))
	}

	switch col.Kind() {
	case table.KindInt, table.KindDate, table.KindDouble:
		p.payloadLen = 8 * int64(rows)
	case table.KindString:
		if err := planString(t, col, rows, p); err != nil {
			return nil, err
		}
		p.payloadLen = 4 * int64(rows)
	default:
		return nil, fmt.Errorf("colstore: hvc2 cannot encode kind %v", col.Kind())
	}
	return p, nil
}

// planString builds the member-row code vector and the dense sorted
// output dictionary. Stored dictionary columns remap by code; other
// KindString columns (computed) go through string values.
func planString(t *table.Table, col table.Column, rows int, p *colPlan) error {
	var dict []string
	codes := make([]int32, 0, rows)

	if sc, ok := col.(*table.StringColumn); ok {
		// Gather member codes, find which dictionary entries occur, and
		// remap to the dense subset; a subset of a sorted dictionary is
		// still sorted. Missing rows keep canonical code 0.
		used := make([]bool, sc.DictSize())
		scCodes := sc.Codes()
		t.Members().Iterate(func(row int) bool {
			if col.Missing(row) {
				codes = append(codes, 0)
			} else {
				code := scCodes[row]
				used[code] = true
				codes = append(codes, code)
			}
			return true
		})
		remap := make([]int32, sc.DictSize())
		for i, u := range used {
			if u {
				remap[i] = int32(len(dict))
				dict = append(dict, sc.Dict()[i])
			}
		}
		for i, code := range codes {
			if used[code] {
				codes[i] = remap[code]
			} else {
				codes[i] = 0 // missing placeholder
			}
		}
	} else {
		// Generic path: collect values, sort the dictionary, remap.
		index := map[string]int32{}
		var vals []string
		t.Members().Iterate(func(row int) bool {
			if col.Missing(row) {
				codes = append(codes, -1)
				return true
			}
			s := col.Str(row)
			code, ok := index[s]
			if !ok {
				code = int32(len(vals))
				index[s] = code
				vals = append(vals, s)
			}
			codes = append(codes, code)
			return true
		})
		dict = append([]string(nil), vals...)
		sort.Strings(dict)
		remap := make([]int32, len(vals))
		for newCode, s := range dict {
			remap[index[s]] = int32(newCode)
		}
		for i, code := range codes {
			if code < 0 {
				codes[i] = 0
			} else {
				codes[i] = remap[code]
			}
		}
	}

	var db bytes.Buffer
	for _, s := range dict {
		writeUvarint(&db, uint64(len(s)))
		db.WriteString(s)
	}
	p.codes = codes
	p.dictBytes = db.Bytes()
	p.dictCount = len(dict)
	p.dictLen = int64(db.Len())
	return nil
}

// encodeBlockV2 writes the block for column c (header, payload,
// missing bitmap, dict; no CRC trailer) into buf.
func encodeBlockV2(buf *bytes.Buffer, t *table.Table, c, rows int, p *colPlan) error {
	payloadEnd := int64(blockHeader) + p.payloadLen
	missingOff := int64(0)
	if p.missing != nil {
		missingOff = pad64(payloadEnd)
	}
	dictOff := int64(0)
	if p.kind == table.KindString {
		dictOff = pad64(pad64(payloadEnd) + p.missingLen)
	}

	var hdr [blockHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(blockHeader))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(p.payloadLen))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(missingOff))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(p.missingLen))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(dictOff))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(p.dictLen))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(p.dictCount))
	buf.Write(hdr[:])

	col := t.ColumnAt(c)
	switch p.kind {
	case table.KindInt, table.KindDate:
		buf.Write(int64Bytes(gatherInts(t, col, rows)))
	case table.KindDouble:
		buf.Write(float64Bytes(gatherDoubles(t, col, rows)))
	case table.KindString:
		buf.Write(int32Bytes(p.codes))
	}
	pad := pad64(payloadEnd) - payloadEnd
	buf.Write(make([]byte, pad))

	if p.missing != nil {
		buf.Write(uint64Bytes(p.missing.Words))
		end := pad64(payloadEnd) + p.missingLen
		buf.Write(make([]byte, pad64(end)-end))
	}
	if p.kind == table.KindString {
		buf.Write(p.dictBytes)
	}
	return nil
}

// gatherInts flattens the member rows of an int/date column, storing
// canonical zero for missing cells. Full-membership stored columns with
// no missing values pass their backing slice through untouched.
func gatherInts(t *table.Table, col table.Column, rows int) []int64 {
	if ic, ok := col.(*table.IntColumn); ok && !ic.HasMissing() && t.NumRows() == ic.Len() {
		return ic.Ints()
	}
	out := make([]int64, 0, rows)
	t.Members().Iterate(func(row int) bool {
		var v int64
		if !col.Missing(row) {
			v = col.Int(row)
		}
		out = append(out, v)
		return true
	})
	return out
}

// gatherDoubles is gatherInts for float64 columns.
func gatherDoubles(t *table.Table, col table.Column, rows int) []float64 {
	if dc, ok := col.(*table.DoubleColumn); ok && !dc.HasMissing() && t.NumRows() == dc.Len() {
		return dc.Doubles()
	}
	out := make([]float64, 0, rows)
	t.Members().Iterate(func(row int) bool {
		var v float64
		if !col.Missing(row) {
			v = col.Double(row)
		}
		out = append(out, v)
		return true
	})
	return out
}

func writeZeros(w io.Writer, n int64) error {
	if n <= 0 {
		return nil
	}
	_, err := w.Write(make([]byte, n))
	return err
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

// dirEntry locates one column block.
type dirEntry struct {
	off, len int64
}

// v2Header is the decoded header of an HVC2 image.
type v2Header struct {
	schema *table.Schema
	rows   int
	dir    []dirEntry
}

// parseV2 decodes and validates an HVC2 header from the start of data.
// Every declared count is checked against the image size before any
// allocation, so malformed or adversarial input produces an error,
// never a panic or an oversized allocation (the FuzzHVC contract).
func parseV2(data []byte) (*v2Header, error) {
	size := int64(len(data))
	if size < 16 || string(data[:4]) != magicV2 {
		return nil, ErrNotHVC2
	}
	numCols := binary.LittleEndian.Uint32(data[4:])
	numRows := binary.LittleEndian.Uint64(data[8:])
	// Every column costs at least 2 name-section bytes, a 16-byte
	// directory entry, and a 68-byte block; every row at least 4 payload
	// bytes per column.
	if int64(numCols) > size/16 {
		return nil, fmt.Errorf("colstore: hvc2 header declares %d columns in a %d-byte file", numCols, size)
	}
	if numRows > uint64(size) {
		return nil, fmt.Errorf("colstore: hvc2 header declares %d rows in a %d-byte file", numRows, size)
	}
	pos := int64(16)
	cols := make([]table.ColumnDesc, numCols)
	seen := make(map[string]bool, numCols)
	for i := range cols {
		n, w := binary.Uvarint(data[pos:])
		if w <= 0 || n > uint64(size) || pos+int64(w)+int64(n)+1 > size {
			return nil, fmt.Errorf("colstore: hvc2 truncated column name %d", i)
		}
		pos += int64(w)
		name := string(data[pos : pos+int64(n)])
		pos += int64(n)
		kind := table.Kind(data[pos])
		pos++
		switch kind {
		case table.KindInt, table.KindDouble, table.KindString, table.KindDate:
		default:
			return nil, fmt.Errorf("colstore: hvc2 column %q has unknown kind %d", name, kind)
		}
		if seen[name] {
			return nil, fmt.Errorf("colstore: hvc2 duplicate column %q", name)
		}
		seen[name] = true
		cols[i] = table.ColumnDesc{Name: name, Kind: kind}
	}
	if pos+16*int64(numCols) > size {
		return nil, fmt.Errorf("colstore: hvc2 truncated directory")
	}
	dir := make([]dirEntry, numCols)
	for i := range dir {
		off := int64(binary.LittleEndian.Uint64(data[pos:]))
		blen := int64(binary.LittleEndian.Uint64(data[pos+8:]))
		pos += 16
		if off < 0 || blen < blockHeader+4 || off+blen < off || off+blen > size {
			return nil, fmt.Errorf("colstore: hvc2 column %d block [%d,+%d) outside %d-byte file", i, off, blen, size)
		}
		if off&(blockAlign-1) != 0 {
			return nil, fmt.Errorf("colstore: hvc2 column %d block offset %d not %d-aligned", i, off, blockAlign)
		}
		dir[i] = dirEntry{off: off, len: blen}
	}
	return &v2Header{schema: table.NewSchema(cols...), rows: int(numRows), dir: dir}, nil
}

// resolveColumns maps requested column names to schema indexes; nil
// selects every column, an unknown name is an error. (The pooled
// source deliberately uses a lenient variant instead — it skips
// unknown names so a sketch over a missing column fails with its
// ordinary error; see storage.PooledSource.Acquire.)
func (h *v2Header) resolveColumns(cols []string) ([]int, error) {
	want := make([]int, 0, h.schema.NumColumns())
	if cols == nil {
		for i := 0; i < h.schema.NumColumns(); i++ {
			want = append(want, i)
		}
		return want, nil
	}
	for _, name := range cols {
		i := h.schema.ColumnIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("colstore: no column %q", name)
		}
		want = append(want, i)
	}
	return want, nil
}

// checkCRC validates the CRC32-C trailer of column ci's block.
func (h *v2Header) checkCRC(data []byte, ci int) error {
	d := h.dir[ci]
	block := data[d.off : d.off+d.len]
	want := binary.LittleEndian.Uint32(block[len(block)-4:])
	if got := crc32.Checksum(block[:len(block)-4], crcTable); got != want {
		return fmt.Errorf("colstore: column %q block CRC mismatch (got %08x, want %08x)",
			h.schema.Columns[ci].Name, got, want)
	}
	return nil
}

// column materializes column ci over the file image. Fixed-width
// payloads and missing bitmaps are reinterpreted in place (zero-copy on
// little-endian hosts); dictionary bytes are decoded to the heap. The
// returned size counts the bytes the column keeps resident.
func (h *v2Header) column(data []byte, ci int) (table.Column, int64, error) {
	d := h.dir[ci]
	block := data[d.off : d.off+d.len]
	body := int64(len(block)) - 4 // CRC trailer excluded
	payloadOff := int64(binary.LittleEndian.Uint64(block[0:]))
	payloadLen := int64(binary.LittleEndian.Uint64(block[8:]))
	missingOff := int64(binary.LittleEndian.Uint64(block[16:]))
	missingLen := int64(binary.LittleEndian.Uint64(block[24:]))
	dictOff := int64(binary.LittleEndian.Uint64(block[32:]))
	dictLen := int64(binary.LittleEndian.Uint64(block[40:]))
	dictCount := int64(binary.LittleEndian.Uint64(block[48:]))

	kind := h.schema.Columns[ci].Kind
	rows := int64(h.rows)
	width := int64(8)
	if kind == table.KindString {
		width = 4
	}
	section := func(name string, off, length int64) ([]byte, error) {
		if off < blockHeader || length < 0 || off+length < off || off+length > body {
			return nil, fmt.Errorf("colstore: column %q %s section [%d,+%d) outside block of %d bytes",
				h.schema.Columns[ci].Name, name, off, length, body)
		}
		return block[off : off+length], nil
	}
	if payloadLen != width*rows {
		return nil, 0, fmt.Errorf("colstore: column %q payload is %d bytes, want %d for %d rows",
			h.schema.Columns[ci].Name, payloadLen, width*rows, rows)
	}
	payload, err := section("payload", payloadOff, payloadLen)
	if err != nil {
		return nil, 0, err
	}

	var missing *table.Bitset
	size := payloadLen
	if missingOff != 0 {
		wantLen := 8 * int64((rows+63)/64)
		if missingLen != wantLen {
			return nil, 0, fmt.Errorf("colstore: column %q missing bitmap is %d bytes, want %d",
				h.schema.Columns[ci].Name, missingLen, wantLen)
		}
		mb, err := section("missing", missingOff, missingLen)
		if err != nil {
			return nil, 0, err
		}
		missing = &table.Bitset{Words: uint64View(mb, int(rows+63)/64), N: int(rows)}
		size += missingLen
	}

	switch kind {
	case table.KindInt, table.KindDate:
		return table.NewIntColumn(kind, int64View(payload, int(rows)), missing), size, nil
	case table.KindDouble:
		return table.NewDoubleColumn(float64View(payload, int(rows)), missing), size, nil
	case table.KindString:
		db, err := section("dict", dictOff, dictLen)
		if err != nil {
			return nil, 0, err
		}
		if dictCount > dictLen && dictCount > 0 {
			return nil, 0, fmt.Errorf("colstore: column %q declares %d dictionary entries in %d bytes",
				h.schema.Columns[ci].Name, dictCount, dictLen)
		}
		dict := make([]string, dictCount)
		pos := 0
		dictHeap := int64(0)
		for i := range dict {
			n, w := binary.Uvarint(db[pos:])
			if w <= 0 || uint64(pos)+uint64(w)+n > uint64(len(db)) {
				return nil, 0, fmt.Errorf("colstore: column %q truncated dictionary entry %d",
					h.schema.Columns[ci].Name, i)
			}
			pos += w
			dict[i] = string(db[pos : pos+int(n)])
			pos += int(n)
			dictHeap += int64(n) + 16
		}
		codes := int32View(payload, int(rows))
		if err := validateCodes(codes, int32(dictCount), missing, h.schema.Columns[ci].Name); err != nil {
			return nil, 0, err
		}
		col, err := table.NewDictColumn(dict, codes, missing)
		if err != nil {
			return nil, 0, err
		}
		return col, size + dictHeap, nil
	default:
		return nil, 0, fmt.Errorf("colstore: unknown kind %v", kind)
	}
}

// validateCodes checks every code indexes the dictionary. Missing rows
// hold the canonical code 0; an empty dictionary is legal only when
// every row is missing (or there are no rows).
func validateCodes(codes []int32, dictCount int32, missing *table.Bitset, name string) error {
	if dictCount == 0 {
		if len(codes) > 0 && (missing == nil || missing.Count() != len(codes)) {
			return fmt.Errorf("colstore: column %q has rows but an empty dictionary", name)
		}
		for _, c := range codes {
			if c != 0 {
				return fmt.Errorf("colstore: column %q code %d with empty dictionary", name, c)
			}
		}
		return nil
	}
	for _, c := range codes {
		if c < 0 || c >= dictCount {
			return fmt.Errorf("colstore: column %q code %d out of dictionary range %d", name, c, dictCount)
		}
	}
	return nil
}

// ReadHVC2Bytes decodes an in-memory HVC2 image, validating every
// requested column's CRC. cols nil selects every column. It backs both
// the eager (heap) load path of the storage layer and the fuzz target;
// malformed input of any shape must produce an error, never a panic.
func ReadHVC2Bytes(data []byte, id string, cols []string) (*table.Table, error) {
	h, err := parseV2(data)
	if err != nil {
		return nil, err
	}
	want, err := h.resolveColumns(cols)
	if err != nil {
		return nil, err
	}
	outCols := make([]table.Column, len(want))
	outDesc := make([]table.ColumnDesc, len(want))
	for k, ci := range want {
		if err := h.checkCRC(data, ci); err != nil {
			return nil, err
		}
		col, _, err := h.column(data, ci)
		if err != nil {
			return nil, err
		}
		outCols[k] = col
		outDesc[k] = h.schema.Columns[ci]
	}
	return table.New(id, table.NewSchema(outDesc...), outCols, table.FullMembership(h.rows)), nil
}

// IsHVC2Magic reports whether data starts with the v2 magic.
func IsHVC2Magic(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == magicV2
}

// ReadHVC2File eagerly loads the requested columns (nil = all) of an
// HVC2 file onto the heap. The file is mapped only transiently: just
// the requested blocks are paged in (directory-guided, CRC-validated)
// and deep-copied, so reading one column of a wide file costs one
// block, not the whole file — the columnar access property the format
// exists for.
func ReadHVC2File(path, id string, cols []string) (*table.Table, error) {
	f, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	want, err := f.hdr.resolveColumns(cols)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	outCols := make([]table.Column, len(want))
	outDesc := make([]table.ColumnDesc, len(want))
	for k, ci := range want {
		col, _, _, err := f.Column(ci)
		if err != nil {
			return nil, err
		}
		heap, err := heapColumn(col)
		if err != nil {
			return nil, fmt.Errorf("colstore: %s column %q: %w", path, f.hdr.schema.Columns[ci].Name, err)
		}
		outCols[k] = heap
		outDesc[k] = f.hdr.schema.Columns[ci]
	}
	return table.New(id, table.NewSchema(outDesc...), outCols, table.FullMembership(f.hdr.rows)), nil
}

// heapColumn deep-copies a (possibly mapped) column so it outlives the
// mapping it was materialized from.
func heapColumn(col table.Column) (table.Column, error) {
	switch c := col.(type) {
	case *table.IntColumn:
		return table.NewIntColumn(c.Kind(), append([]int64(nil), c.Ints()...), c.MissingMask().Clone()), nil
	case *table.DoubleColumn:
		return table.NewDoubleColumn(append([]float64(nil), c.Doubles()...), c.MissingMask().Clone()), nil
	case *table.StringColumn:
		// The dictionary strings are heap-decoded already; only codes
		// and the mask alias the mapping.
		return table.NewDictColumn(c.Dict(), append([]int32(nil), c.Codes()...), c.MissingMask().Clone())
	default:
		return col, nil
	}
}

// File is an open HVC2 file served by memory mapping. Columns
// materialize on demand through Column; the mapping itself is created
// at open (address space, not memory — pages fault in as columns are
// touched) and released at Close. Files are safe for concurrent use.
type File struct {
	path string
	f    *os.File
	size int64
	hdr  *v2Header

	mu        sync.Mutex
	mapped    []byte
	validated []bool // per-column CRC already checked (files are immutable)

	// cols keeps weak references to materialized columns so that
	// re-materializing after a pool eviction returns the identical
	// object while any scan still holds it (see WeakColumns).
	cols WeakColumns
}

// OpenFile maps an HVC2 file. A file with a different magic returns
// ErrNotHVC2 (wrapped), letting callers fall back to the v1 path.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	m, err := mmapFile(f, info.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("colstore: mmap %s: %w", path, err)
	}
	h, err := parseV2(m)
	if err != nil {
		munmap(m)
		f.Close()
		if errors.Is(err, ErrNotHVC2) {
			return nil, fmt.Errorf("%w: %s", ErrNotHVC2, path)
		}
		return nil, fmt.Errorf("colstore: %s: %w", path, err)
	}
	return &File{
		path:      path,
		f:         f,
		size:      info.Size(),
		hdr:       h,
		mapped:    m,
		validated: make([]bool, h.schema.NumColumns()),
	}, nil
}

// Path returns the file path.
func (f *File) Path() string { return f.path }

// Schema returns the file's column schema.
func (f *File) Schema() *table.Schema { return f.hdr.schema }

// Rows returns the number of stored rows.
func (f *File) Rows() int { return f.hdr.rows }

// Mapped reports whether the file is served by a real memory mapping
// (false on platforms without one, where the image lives on the heap).
func (f *File) Mapped() bool { return mmapSupported }

// Column materializes column ci: CRC-validated on first touch, then
// reinterpreted in place. The returned evict function releases the
// column's OS pages; it is safe to call while references to the column
// remain — the pages fault back in from the immutable file, so a stale
// reference reads bit-identical data, just colder. While any holder
// keeps the column alive, repeated calls return the identical object
// (weak caching), so identity-keyed scan state survives evictions.
func (f *File) Column(ci int) (col table.Column, size int64, evict func(), err error) {
	if ci < 0 || ci >= f.hdr.schema.NumColumns() {
		return nil, 0, nil, fmt.Errorf("colstore: %s: no column %d", f.path, ci)
	}
	return f.cols.Load(ci, func() (table.Column, int64, func(), error) {
		f.mu.Lock()
		if f.mapped == nil && f.size > 0 {
			f.mu.Unlock()
			return nil, 0, nil, fmt.Errorf("colstore: %s: file closed", f.path)
		}
		need := !f.validated[ci]
		m := f.mapped
		f.mu.Unlock()

		if need {
			// CRC outside the lock (it reads the whole block); marking
			// validated twice on a race is harmless.
			if err := f.hdr.checkCRC(m, ci); err != nil {
				return nil, 0, nil, err
			}
			f.mu.Lock()
			f.validated[ci] = true
			f.mu.Unlock()
		}
		col, size, err := f.hdr.column(m, ci)
		if err != nil {
			return nil, 0, nil, err
		}
		d := f.hdr.dir[ci]
		return col, size, func() { releasePages(m, d.off, d.off+d.len) }, nil
	})
}

// ColumnByName is Column keyed by schema name.
func (f *File) ColumnByName(name string) (table.Column, int64, func(), error) {
	ci := f.hdr.schema.ColumnIndex(name)
	if ci < 0 {
		return nil, 0, nil, fmt.Errorf("colstore: %s: no column %q", f.path, name)
	}
	return f.Column(ci)
}

// Close unmaps and closes the file. Columns materialized from it must
// no longer be used.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var err error
	if f.mapped != nil {
		err = munmap(f.mapped)
		f.mapped = nil
	}
	if f.f != nil {
		if cerr := f.f.Close(); err == nil {
			err = cerr
		}
		f.f = nil
	}
	return err
}

// ColumnBytes estimates the resident size of a heap-decoded column, so
// non-mapped formats account against the same pool budget.
func ColumnBytes(col table.Column) int64 {
	var n int64
	switch c := col.(type) {
	case *table.IntColumn:
		n = 8 * int64(c.Len())
		if m := c.MissingMask(); m != nil {
			n += 8 * int64(len(m.Words))
		}
	case *table.DoubleColumn:
		n = 8 * int64(c.Len())
		if m := c.MissingMask(); m != nil {
			n += 8 * int64(len(m.Words))
		}
	case *table.StringColumn:
		n = 4 * int64(c.Len())
		for _, s := range c.Dict() {
			n += int64(len(s)) + 16
		}
		if m := c.MissingMask(); m != nil {
			n += 8 * int64(len(m.Words))
		}
	default:
		n = 64 // computed columns store no data
	}
	return n
}
