//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package colstore

import (
	"io"
	"os"
)

const mmapSupported = false

// mmapFile falls back to reading the whole file into the heap on
// platforms without a wired mmap: every View over the image is still
// correct, and zero-copy within the process still holds, but the image
// is not demand-paged from disk.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

func munmap(b []byte) error { return nil }

// releasePages is a no-op for a heap image; the GC reclaims it when
// the File closes.
func releasePages(b []byte, lo, hi int64) {}
