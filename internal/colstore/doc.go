// Package colstore is Hillview's memory-mapped column store: leaf
// column data served from disk files under a configurable memory
// budget, so a worker's dataset size is bounded by its disks, not its
// RAM (paper §3.5, §5.5, §5.7 — column data is evictable soft state,
// loaded lazily on first touch and reclaimed under memory pressure,
// with suitable formats served straight from memory-mapped files).
//
// The package has two halves:
//
//   - The HVC2 format (format.go): a v2 layout of the repository's
//     columnar file format in which every fixed-width payload —
//     int64/date values, float64 values, int32 dictionary codes, and
//     missing bitmaps — is stored raw, little-endian, and 64-byte
//     aligned, so a memory-mapped block reinterprets directly as
//     []int64 / []float64 / []int32 with zero copy (zerocopy.go,
//     mmap_unix.go). Variable-width dictionary bytes live in a
//     per-column dict section and are decoded to the heap on
//     materialization (dictionaries are small relative to data). Every
//     column block carries a CRC32-C, validated on first touch.
//
//   - A budgeted buffer pool (pool.go): Pool tracks resident bytes per
//     materialized column, loads columns lazily on first Acquire, pins
//     them while a scan holds them, and evicts least-recently-used
//     unpinned columns once a configurable budget is exceeded.
//     Eviction of a mapped column releases its OS pages (madvise
//     MADV_DONTNEED) but keeps the mapping itself valid, so a stale
//     reference held by a derived table remains correct — the pages
//     simply fault back in from the immutable file. Eviction of a
//     heap-decoded column just drops the pool's reference. Either way
//     a reloaded column is bit-identical, which is what lets eviction
//     compose with the engine's soft-state replay story.
//
// Materialized columns are the ordinary concrete column types of
// package table (IntColumn, DoubleColumn, StringColumn) whose backing
// slices alias the mapping, so every vectorized sketch kernel — span
// iteration, typed bulk access, batch accumulators — runs unmodified
// on mapped data with no per-scan allocation for fixed-width kinds.
//
// The pool itself is format-agnostic: Acquire takes a loader callback,
// so the storage layer serves HVC2 files through File (mmap) and
// legacy HVC1 files through its own per-column decode path, both under
// one budget. Wiring into the engine happens in package storage
// (PooledSource implements engine.LeafSource).
package colstore
