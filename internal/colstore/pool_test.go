package colstore

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/table"
)

// testBudget lets CI force eviction churn across the whole test run by
// setting HILLVIEW_POOL_BUDGET; tests use the smaller of the env value
// and their own default so assertions about eviction still hold.
func testBudget(def int64) int64 {
	if s := os.Getenv("HILLVIEW_POOL_BUDGET"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 && v < def {
			return v
		}
	}
	return def
}

// intLoader returns a loader producing a deterministic column of n
// int64s (8n bytes), counting invocations.
func intLoader(n int, seed int64, loads *atomic.Int64) Loader {
	return func() (table.Column, int64, func(), error) {
		loads.Add(1)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = seed + int64(i)
		}
		return table.NewIntColumn(table.KindInt, vals, nil), int64(8 * n), nil, nil
	}
}

func TestPoolHitMissAndBudgetEviction(t *testing.T) {
	// Budget fits exactly two 800-byte columns.
	p := NewPool(1600)
	var loads atomic.Int64
	get := func(name string) func() {
		col, release, err := p.Acquire(ColKey{"src", name}, intLoader(100, int64(len(name)), &loads))
		if err != nil {
			t.Fatal(err)
		}
		if col.Len() != 100 {
			t.Fatalf("column %q: len %d", name, col.Len())
		}
		return release
	}
	get("a")()
	get("b")()
	if s := p.Stats(); s.Misses != 2 || s.Hits != 0 || s.Resident != 1600 {
		t.Fatalf("after two loads: %v", s)
	}
	get("a")() // hit
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("expected a hit: %v", s)
	}
	get("c")() // pushes resident to 2400 -> evicts LRU (b)
	s := p.Stats()
	if s.Resident > 1600 || s.Evictions == 0 {
		t.Fatalf("budget not enforced: %v", s)
	}
	get("b")() // must reload
	if got := loads.Load(); got != 4 {
		t.Fatalf("loader ran %d times, want 4 (a,b,c + reload of b)", got)
	}
}

func TestPoolPinPreventsEviction(t *testing.T) {
	p := NewPool(800) // budget = one column
	var loads atomic.Int64
	colA, releaseA, err := p.Acquire(ColKey{"src", "a"}, intLoader(100, 1, &loads))
	if err != nil {
		t.Fatal(err)
	}
	// While a is pinned, loading b overshoots the budget; a must stay.
	_, releaseB, err := p.Acquire(ColKey{"src", "b"}, intLoader(100, 2, &loads))
	if err != nil {
		t.Fatal(err)
	}
	releaseB()
	if s := p.Stats(); s.Pinned != 1 {
		t.Fatalf("want exactly the pinned column: %v", s)
	}
	// a resident and pinned: another acquire is a hit, not a reload.
	_, r, err := p.Acquire(ColKey{"src", "a"}, intLoader(100, 1, &loads))
	if err != nil {
		t.Fatal(err)
	}
	r()
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("pinned column was evicted: %v", s)
	}
	if p.EvictAll() == 0 {
		// b was already evicted by the budget; fine.
	}
	// EvictAll must not drop the pinned a.
	_, r2, err := p.Acquire(ColKey{"src", "a"}, intLoader(100, 1, &loads))
	if err != nil {
		t.Fatal(err)
	}
	r2()
	if s := p.Stats(); s.Hits != 2 {
		t.Fatalf("EvictAll dropped a pinned column: %v", s)
	}
	releaseA()
	_ = colA
	// Now release drops resident back under budget.
	if s := p.Stats(); s.Resident > 800 {
		t.Fatalf("release did not trigger eviction: %v", s)
	}
}

func TestPoolEvictThenReloadBitIdentical(t *testing.T) {
	p := NewPool(testBudget(1 << 20))
	var loads atomic.Int64
	key := ColKey{"src", "col"}
	first, r1, err := p.Acquire(key, intLoader(500, 42, &loads))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]int64(nil), first.(*table.IntColumn).Ints()...)
	r1()
	if p.EvictAll() != 1 {
		t.Fatal("EvictAll did not drop the released column")
	}
	second, r2, err := p.Acquire(key, intLoader(500, 42, &loads))
	if err != nil {
		t.Fatal(err)
	}
	defer r2()
	if loads.Load() != 2 {
		t.Fatalf("loader ran %d times, want 2", loads.Load())
	}
	if !reflect.DeepEqual(snapshot, second.(*table.IntColumn).Ints()) {
		t.Fatal("reloaded column differs from the evicted one")
	}
}

func TestPoolLoaderErrorNotCached(t *testing.T) {
	p := NewPool(0)
	boom := errors.New("boom")
	fail := true
	var loads atomic.Int64
	load := func() (table.Column, int64, func(), error) {
		loads.Add(1)
		if fail {
			return nil, 0, nil, boom
		}
		return table.NewIntColumn(table.KindInt, make([]int64, 4), nil), 32, nil, nil
	}
	if _, _, err := p.Acquire(ColKey{"s", "c"}, load); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	fail = false
	col, r, err := p.Acquire(ColKey{"s", "c"}, load)
	if err != nil || col == nil {
		t.Fatalf("retry after loader error failed: %v", err)
	}
	r()
	if loads.Load() != 2 {
		t.Fatalf("loader ran %d times, want 2", loads.Load())
	}
}

// TestPoolConcurrentBudget hammers one pool from many goroutines under
// a small budget (run with -race): loads must stay single-flight per
// key, pins must never be evicted, and the budget must hold once all
// pins release.
func TestPoolConcurrentBudget(t *testing.T) {
	const (
		cols    = 16
		workers = 8
		iters   = 60
		colSize = 8 * 64
	)
	p := NewPool(testBudget(3 * colSize)) // room for ~3 of 16 columns
	var wg sync.WaitGroup
	var loads atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("c%d", (w*7+i)%cols)
				col, release, err := p.Acquire(ColKey{"src", name}, intLoader(64, int64(len(name)), &loads))
				if err != nil {
					t.Errorf("acquire %s: %v", name, err)
					return
				}
				s := int64(0)
				for _, v := range col.(*table.IntColumn).Ints() {
					s += v
				}
				_ = s
				release()
			}
		}(w)
	}
	wg.Wait()
	s := p.Stats()
	if s.Pinned != 0 {
		t.Fatalf("pins leaked: %v", s)
	}
	if s.Budget > 0 && s.Resident > s.Budget {
		t.Fatalf("budget exceeded at rest: %v", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("no eviction churn under tiny budget: %v", s)
	}
	if s.Hits+s.Misses != workers*iters {
		t.Fatalf("accounting: hits %d + misses %d != %d", s.Hits, s.Misses, workers*iters)
	}
}

// TestPoolMappedFileChurn drives a real mapped file through
// evict/reload cycles and checks values never change.
func TestPoolMappedFileChurn(t *testing.T) {
	src := testTable(t, 2000)
	f, err := OpenFile(writeTemp(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := NewPool(1) // evict everything as soon as it unpins
	want := map[string][]table.Value{}
	for pass := 0; pass < 3; pass++ {
		for ci := 0; ci < f.Schema().NumColumns(); ci++ {
			name := f.Schema().Columns[ci].Name
			ci := ci
			col, release, err := p.Acquire(ColKey{f.Path(), name}, func() (table.Column, int64, func(), error) {
				c, size, evict, err := f.Column(ci)
				return c, size, evict, err
			})
			if err != nil {
				t.Fatal(err)
			}
			vals := make([]table.Value, col.Len())
			for i := range vals {
				vals[i] = col.Value(i)
			}
			if pass == 0 {
				want[name] = vals
			} else if !reflect.DeepEqual(want[name], vals) {
				t.Fatalf("pass %d: column %q changed across evict/reload", pass, name)
			}
			release()
		}
	}
	if s := p.Stats(); s.Evictions == 0 {
		t.Fatalf("no evictions under budget=1: %v", s)
	}
}
