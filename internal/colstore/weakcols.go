package colstore

import (
	"sync"
	"weak"

	"repro/internal/table"
)

// WeakColumns caches materialized columns by slot under weak pointers:
// as long as any holder — a pinned pool entry, a scan accumulator's
// keyed stream, a derived table — keeps a column reachable,
// re-materializing the slot returns the identical object. That makes
// column identity stable across pool evictions, which identity-keyed
// scan state relies on: the Misra–Gries accumulator continues its
// keyed stream across consecutive chunks only while the column pointer
// is unchanged, so identity stability is what keeps pooled scans
// bit-identical to fully-resident scans under any eviction schedule.
// Once the last holder drops a column, the GC reclaims it and the next
// load builds a fresh — bit-identical — one.
type WeakColumns struct {
	mu    sync.Mutex // guards the slot map only
	slots map[int]*weakSlot
}

// weakSlot serializes loads per slot (identity requires one winner per
// column) while leaving different slots free to materialize — and run
// their CRC pass — concurrently.
type weakSlot struct {
	mu    sync.Mutex
	get   func() table.Column // nil until first load; nil result = collected
	size  int64
	evict func()
}

// weakGetter wraps one concrete column in a weak pointer, converting
// the typed nil of a collected object to an interface nil.
func weakGetter[T any, PT interface {
	*T
	table.Column
}](c PT) func() table.Column {
	p := weak.Make((*T)(c))
	return func() table.Column {
		if v := p.Value(); v != nil {
			return PT(v)
		}
		return nil
	}
}

// weakTo builds the weak getter for the concrete column types the
// store materializes. Other types are not cached (get always misses).
func weakTo(c table.Column) func() table.Column {
	switch cc := c.(type) {
	case *table.IntColumn:
		return weakGetter(cc)
	case *table.DoubleColumn:
		return weakGetter(cc)
	case *table.StringColumn:
		return weakGetter(cc)
	default:
		return func() table.Column { return nil }
	}
}

// Load returns the cached column for slot if it is still alive,
// otherwise runs load and caches the result. Loads of one slot are
// serialized so concurrent callers share one object (the pool's
// single-flight makes that the rare path); loads of different slots
// run concurrently.
func (w *WeakColumns) Load(slot int, load func() (table.Column, int64, func(), error)) (table.Column, int64, func(), error) {
	w.mu.Lock()
	if w.slots == nil {
		w.slots = make(map[int]*weakSlot)
	}
	s, ok := w.slots[slot]
	if !ok {
		s = &weakSlot{}
		w.slots[slot] = s
	}
	w.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.get != nil {
		if col := s.get(); col != nil {
			return col, s.size, s.evict, nil
		}
	}
	col, size, evict, err := load()
	if err != nil {
		return nil, 0, nil, err
	}
	s.get, s.size, s.evict = weakTo(col), size, evict
	return col, size, evict, nil
}
