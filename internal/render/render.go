// Package render draws chart summaries as SVG and ASCII. It is the
// endpoint of the visualization-driven pipeline: renderers consume only
// vizketch summaries — never row data — so whatever appears on screen
// was computed at exactly the precision the summary carries (paper
// §4.1-4.2, Fig 3). It substitutes for Hillview's TypeScript/D3
// front end.
package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sketch"
)

// Shades is the number of distinguishable density levels used by heat
// map renderings (paper §4.3: c ≈ 20 distinct colors).
const Shades = 20

// ShadeOf quantizes a density in [0, max] to one of Shades+1 levels
// (level 0 = empty). The vizketch accuracy guarantee is exactly "off by
// at most one level" (Fig 3d).
func ShadeOf(count, max int64) int {
	if max <= 0 || count <= 0 {
		return 0
	}
	s := int(math.Ceil(float64(count) / float64(max) * Shades))
	if s > Shades {
		s = Shades
	}
	return s
}

// BarHeights scales histogram counts to pixel heights with the tallest
// bar at v pixels — the rendering step whose ±0.5 px rounding the
// sampled histogram's accuracy is matched to (Fig 3b).
func BarHeights(h *sketch.Histogram, v int) []int {
	max := h.MaxCount()
	out := make([]int, len(h.Counts))
	if max == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = int(math.Round(float64(c) / float64(max) * float64(v)))
	}
	return out
}

// svgBuilder accumulates an SVG document.
type svgBuilder struct {
	sb   strings.Builder
	w, h int
}

func newSVG(w, h int) *svgBuilder {
	b := &svgBuilder{w: w, h: h}
	fmt.Fprintf(&b.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.sb.WriteByte('\n')
	return b
}

func (b *svgBuilder) rect(x, y, w, h int, fill string) {
	fmt.Fprintf(&b.sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`, x, y, w, h, fill)
	b.sb.WriteByte('\n')
}

func (b *svgBuilder) line(x1, y1, x2, y2 int, stroke string) {
	fmt.Fprintf(&b.sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>`, x1, y1, x2, y2, stroke)
	b.sb.WriteByte('\n')
}

func (b *svgBuilder) polyline(pts []point, stroke string) {
	b.sb.WriteString(`<polyline fill="none" stroke="` + stroke + `" points="`)
	for i, p := range pts {
		if i > 0 {
			b.sb.WriteByte(' ')
		}
		fmt.Fprintf(&b.sb, "%d,%d", p.x, p.y)
	}
	b.sb.WriteString(`"/>`)
	b.sb.WriteByte('\n')
}

func (b *svgBuilder) text(x, y int, s string) {
	fmt.Fprintf(&b.sb, `<text x="%d" y="%d" font-size="10">%s</text>`, x, y, escape(s))
	b.sb.WriteByte('\n')
}

func (b *svgBuilder) String() string { return b.sb.String() + "</svg>\n" }

type point struct{ x, y int }

func escape(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace(s)
}

// blues is a 21-level sequential color ramp (index 0 = background).
func blues(level int) string {
	if level <= 0 {
		return "#f7fbff"
	}
	// Interpolate from light (#deebf7) to dark (#08306b).
	t := float64(level) / Shades
	r := int(0xde + t*(0x08-0xde))
	g := int(0xeb + t*(0x30-0xeb))
	bl := int(0xf7 + t*(0x6b-0xf7))
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

// HistogramSVG renders a histogram (with optional CDF overlay) at
// w × h pixels.
func HistogramSVG(hv *sketch.Histogram, cdf *sketch.Histogram, w, h int) string {
	b := newSVG(w, h)
	n := len(hv.Counts)
	if n == 0 {
		return b.String()
	}
	heights := BarHeights(hv, h-14)
	barW := w / n
	if barW < 1 {
		barW = 1
	}
	for i, bh := range heights {
		if bh > 0 {
			b.rect(i*barW, h-bh, barW-1, bh, "#4292c6")
		}
	}
	if cdf != nil {
		vals := cdf.CDF()
		pts := make([]point, len(vals))
		for i, v := range vals {
			pts[i] = point{x: i * w / len(vals), y: h - int(v*float64(h-14))}
		}
		b.polyline(pts, "#de2d26")
	}
	b.text(2, 10, fmt.Sprintf("%s  max=%d missing=%d", hv.Buckets.LabelOf(0), hv.MaxCount(), hv.Missing))
	return b.String()
}

// StackedSVG renders a stacked histogram; normalized scales every bar
// to full height.
func StackedSVG(h2 *sketch.Histogram2D, w, h int, normalized bool) string {
	b := newSVG(w, h)
	nx := h2.X.Count
	if nx == 0 {
		return b.String()
	}
	maxTotal := h2.MaxXTotal()
	if maxTotal == 0 {
		return b.String()
	}
	barW := w / nx
	if barW < 1 {
		barW = 1
	}
	for xi := 0; xi < nx; xi++ {
		total := h2.XTotal(xi)
		if total == 0 {
			continue
		}
		scale := float64(h-2) / float64(maxTotal)
		if normalized {
			scale = float64(h-2) / float64(total)
		}
		y := h
		for yi := 0; yi < h2.Y.Count; yi++ {
			seg := int(math.Round(float64(h2.At(xi, yi)) * scale))
			if seg == 0 {
				continue
			}
			y -= seg
			b.rect(xi*barW, y, barW-1, seg, blues(1+yi*(Shades-1)/maxInt(1, h2.Y.Count-1)))
		}
		if other := int(math.Round(float64(h2.YOther[xi]) * scale)); other > 0 {
			y -= other
			b.rect(xi*barW, y, barW-1, other, "#bdbdbd")
		}
	}
	return b.String()
}

// HeatmapSVG renders a heat map with cell-size pixels per bin.
func HeatmapSVG(h2 *sketch.Histogram2D, cell int) string {
	if cell < 1 {
		cell = 3
	}
	w, h := h2.X.Count*cell, h2.Y.Count*cell
	b := newSVG(w, h)
	max := h2.MaxCell()
	for xi := 0; xi < h2.X.Count; xi++ {
		for yi := 0; yi < h2.Y.Count; yi++ {
			if c := h2.At(xi, yi); c > 0 {
				// y axis points up.
				b.rect(xi*cell, h-(yi+1)*cell, cell, cell, blues(ShadeOf(c, max)))
			}
		}
	}
	return b.String()
}

// TrellisHistogramsSVG renders a Histogram2D as an array of 1-D
// histograms, one per Y bucket — the "trellis plots: arrays of the
// other plots" of paper Fig 2. The summary is the same one a stacked
// histogram uses; only the rendering differs, so switching between the
// two visualizations costs no recomputation.
func TrellisHistogramsSVG(h2 *sketch.Histogram2D, w, h int) string {
	k := h2.Y.Count
	if k == 0 {
		return newSVG(1, 1).String()
	}
	cols := int(math.Ceil(math.Sqrt(float64(k))))
	rows := (k + cols - 1) / cols
	pw := w / cols
	ph := h / rows
	if pw < 8 {
		pw = 8
	}
	if ph < 20 {
		ph = 20
	}
	b := newSVG(cols*pw, rows*ph)
	for yi := 0; yi < k; yi++ {
		ox := (yi % cols) * pw
		oy := (yi / cols) * ph
		// Per-plot max for bar scaling.
		var max int64
		for xi := 0; xi < h2.X.Count; xi++ {
			if c := h2.At(xi, yi); c > max {
				max = c
			}
		}
		barW := (pw - 2) / h2.X.Count
		if barW < 1 {
			barW = 1
		}
		for xi := 0; xi < h2.X.Count; xi++ {
			if max == 0 {
				break
			}
			bh := int(math.Round(float64(h2.At(xi, yi)) / float64(max) * float64(ph-16)))
			if bh > 0 {
				b.rect(ox+xi*barW, oy+ph-bh, barW, bh, "#4292c6")
			}
		}
		b.text(ox+1, oy+10, h2.Y.LabelOf(yi))
		b.line(ox, oy+ph, ox+pw-2, oy+ph, "#888888")
	}
	return b.String()
}

// TrellisSVG renders a grid of heat maps.
func TrellisSVG(tr *sketch.Trellis, cell int) string {
	if cell < 1 {
		cell = 2
	}
	k := len(tr.Plots)
	if k == 0 {
		return newSVG(1, 1).String()
	}
	cols := int(math.Ceil(math.Sqrt(float64(k))))
	rows := (k + cols - 1) / cols
	pw := tr.Plots[0].X.Count * cell
	ph := tr.Plots[0].Y.Count * cell
	b := newSVG(cols*(pw+8), rows*(ph+16))
	for i, plot := range tr.Plots {
		ox := (i % cols) * (pw + 8)
		oy := (i / cols) * (ph + 16)
		max := plot.MaxCell()
		for xi := 0; xi < plot.X.Count; xi++ {
			for yi := 0; yi < plot.Y.Count; yi++ {
				if c := plot.At(xi, yi); c > 0 {
					b.rect(ox+xi*cell, oy+14+(plot.Y.Count-1-yi)*cell, cell, cell, blues(ShadeOf(c, max)))
				}
			}
		}
		b.text(ox, oy+10, tr.Group.LabelOf(i))
		b.line(ox, oy+14+ph, ox+pw, oy+14+ph, "#888888")
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
