package render

import (
	"strings"
	"testing"

	"repro/internal/sketch"
	"repro/internal/table"
)

func testHistogram() *sketch.Histogram {
	return &sketch.Histogram{
		Buckets:    sketch.NumericBuckets(table.KindDouble, 0, 100, 5),
		Counts:     []int64{10, 40, 25, 5, 20},
		Missing:    3,
		SampleRate: 1,
	}
}

func testHist2D() *sketch.Histogram2D {
	h := &sketch.Histogram2D{
		X:          sketch.NumericBuckets(table.KindDouble, 0, 10, 4),
		Y:          sketch.StringBucketsFromBounds([]string{"a", "b", "c"}, true),
		Counts:     make([]int64, 12),
		YOther:     make([]int64, 4),
		SampleRate: 1,
	}
	for i := range h.Counts {
		h.Counts[i] = int64(i * 3 % 7)
	}
	h.YOther[2] = 4
	return h
}

func TestShadeOf(t *testing.T) {
	if ShadeOf(0, 100) != 0 {
		t.Error("zero count should be shade 0")
	}
	if ShadeOf(100, 100) != Shades {
		t.Error("max count should be top shade")
	}
	if ShadeOf(1, 100) != 1 {
		t.Error("tiny count should be the first visible shade")
	}
	if ShadeOf(5, 0) != 0 {
		t.Error("zero max should be shade 0")
	}
	// Monotone.
	prev := 0
	for c := int64(0); c <= 100; c += 5 {
		s := ShadeOf(c, 100)
		if s < prev {
			t.Fatalf("shade not monotone at %d", c)
		}
		prev = s
	}
}

func TestBarHeights(t *testing.T) {
	h := testHistogram()
	heights := BarHeights(h, 100)
	if heights[1] != 100 {
		t.Errorf("tallest bar = %d, want 100", heights[1])
	}
	if heights[0] != 25 || heights[3] != 13 {
		t.Errorf("heights = %v", heights)
	}
	empty := &sketch.Histogram{Counts: []int64{0, 0}}
	if got := BarHeights(empty, 10); got[0] != 0 || got[1] != 0 {
		t.Error("empty histogram should render flat")
	}
}

func TestHistogramSVG(t *testing.T) {
	h := testHistogram()
	svg := HistogramSVG(h, nil, 300, 120)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<rect") != 5 {
		t.Errorf("rects = %d, want 5", strings.Count(svg, "<rect"))
	}
	// With CDF overlay.
	svg = HistogramSVG(h, h, 300, 120)
	if !strings.Contains(svg, "<polyline") {
		t.Error("missing CDF polyline")
	}
}

func TestStackedAndHeatmapSVG(t *testing.T) {
	h2 := testHist2D()
	svg := StackedSVG(h2, 200, 100, false)
	if !strings.Contains(svg, "<rect") {
		t.Error("stacked SVG empty")
	}
	nsvg := StackedSVG(h2, 200, 100, true)
	if !strings.Contains(nsvg, "<rect") {
		t.Error("normalized SVG empty")
	}
	hm := HeatmapSVG(h2, 3)
	if !strings.Contains(hm, "<rect") {
		t.Error("heatmap SVG empty")
	}
	tr := &sketch.Trellis{
		Group: sketch.StringBucketsFromBounds([]string{"g1", "g2"}, true),
		Plots: []*sketch.Histogram2D{testHist2D(), testHist2D()},
	}
	tsvg := TrellisSVG(tr, 2)
	if strings.Count(tsvg, "<text") != 2 {
		t.Errorf("trellis labels = %d", strings.Count(tsvg, "<text"))
	}
}

func TestHistogramASCII(t *testing.T) {
	h := testHistogram()
	out := HistogramASCII(h, 50, 10)
	if !strings.Contains(out, "#") {
		t.Error("no bars drawn")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 11 {
		t.Errorf("lines = %d", len(lines))
	}
	if HistogramASCII(&sketch.Histogram{}, 10, 5) != "(empty)\n" {
		t.Error("empty histogram rendering")
	}
}

func TestHeatmapAndCDFASCII(t *testing.T) {
	out := HeatmapASCII(testHist2D())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("heatmap lines = %d, want Y bins", len(lines))
	}
	for _, l := range lines {
		if len(l) != 4 {
			t.Errorf("heatmap width = %d, want X bins", len(l))
		}
	}
	cdf := CDFASCII(testHistogram(), 5)
	if !strings.Contains(cdf, "*") {
		t.Error("cdf curve empty")
	}
}

func TestTableASCII(t *testing.T) {
	l := &sketch.NextKList{
		Rows: []table.Row{
			{table.StringValue("SFO"), table.IntValue(10)},
			{table.StringValue("JFK"), table.MissingValue(table.KindInt)},
		},
		Counts: []int64{3, 1},
		Before: 5,
		Total:  100,
	}
	out := TableASCII(l, []string{"Origin", "Delay"})
	if !strings.Contains(out, "SFO") || !strings.Contains(out, "JFK") {
		t.Error("values missing")
	}
	if !strings.Contains(out, "∅") {
		t.Error("missing marker absent")
	}
	if !strings.Contains(out, "position 5 of 100") {
		t.Error("position line wrong")
	}
}

func TestHeavyHittersAndMomentsASCII(t *testing.T) {
	items := []sketch.HHItem{
		{Value: table.StringValue("WN"), Count: 500},
		{Value: table.StringValue("AA"), Count: 250},
	}
	out := HeavyHittersASCII(items, 1000)
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "25.0%") {
		t.Errorf("shares wrong:\n%s", out)
	}
	m := &sketch.Moments{Count: 10, Min: 1, Max: 9, Sums: []float64{50, 290}}
	ms := MomentsASCII("x", m)
	if !strings.Contains(ms, "mean=5.000") {
		t.Errorf("moments: %s", ms)
	}
}

func TestTrellisHistogramsSVG(t *testing.T) {
	h2 := testHist2D()
	svg := TrellisHistogramsSVG(h2, 300, 200)
	if !strings.Contains(svg, "<rect") {
		t.Error("trellis histograms empty")
	}
	// One label per Y bucket.
	if got := strings.Count(svg, "<text"); got != h2.Y.Count {
		t.Errorf("labels = %d, want %d", got, h2.Y.Count)
	}
	empty := &sketch.Histogram2D{X: h2.X, Y: sketch.BucketSpec{}, Counts: nil, YOther: nil}
	if !strings.HasPrefix(TrellisHistogramsSVG(empty, 10, 10), "<svg") {
		t.Error("empty trellis should still be an SVG")
	}
}
