package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sketch"
	"repro/internal/table"
)

// asciiShades maps density levels to characters, light to dark.
var asciiShades = []byte(" .:-=+*#%@")

// HistogramASCII renders a histogram as rows of bars for terminals,
// width columns wide and height lines tall.
func HistogramASCII(h *sketch.Histogram, width, height int) string {
	n := len(h.Counts)
	if n == 0 || height < 1 {
		return "(empty)\n"
	}
	if width < n {
		width = n
	}
	colW := width / n
	if colW < 1 {
		colW = 1
	}
	heights := BarHeights(h, height)
	var sb strings.Builder
	for line := height; line >= 1; line-- {
		for i := 0; i < n; i++ {
			ch := byte(' ')
			if heights[i] >= line {
				ch = '#'
			}
			for c := 0; c < colW; c++ {
				sb.WriteByte(ch)
			}
		}
		sb.WriteByte('\n')
	}
	for i := 0; i < n*colW; i++ {
		sb.WriteByte('-')
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%s .. %s  (max bar=%d, missing=%d, sampled=%d)\n",
		h.Buckets.LabelOf(0), h.Buckets.LabelOf(n-1), h.MaxCount(), h.Missing, h.SampledRows)
	return sb.String()
}

// HeatmapASCII renders a heat map as character shades.
func HeatmapASCII(h2 *sketch.Histogram2D) string {
	max := h2.MaxCell()
	var sb strings.Builder
	for yi := h2.Y.Count - 1; yi >= 0; yi-- {
		for xi := 0; xi < h2.X.Count; xi++ {
			level := ShadeOf(h2.At(xi, yi), max)
			sb.WriteByte(asciiShades[level*(len(asciiShades)-1)/Shades])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CDFASCII renders a CDF as a sparkline-style curve.
func CDFASCII(h *sketch.Histogram, height int) string {
	vals := h.CDF()
	if len(vals) == 0 || height < 1 {
		return "(empty)\n"
	}
	var sb strings.Builder
	for line := height; line >= 1; line-- {
		lo := float64(line-1) / float64(height)
		for _, v := range vals {
			if v >= lo && v < float64(line)/float64(height) {
				sb.WriteByte('*')
			} else if v >= float64(line)/float64(height) {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TableASCII renders a NextKList as an aligned text table with the
// given column headers (order columns first, then extras) and the
// duplicate counts the spreadsheet shows (paper §3.3).
func TableASCII(l *sketch.NextKList, headers []string) string {
	widths := make([]int, len(headers))
	for i, name := range headers {
		widths[i] = len(name)
	}
	cells := make([][]string, len(l.Rows))
	for r, row := range l.Rows {
		cells[r] = make([]string, len(headers))
		for c := range headers {
			s := ""
			if c < len(row) {
				s = row[c].String()
				if row[c].Missing {
					s = "∅"
				}
			}
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cols []string, count string) {
		for c, s := range cols {
			fmt.Fprintf(&sb, "| %-*s ", widths[c], s)
		}
		fmt.Fprintf(&sb, "| %s\n", count)
	}
	writeRow(headers, "count")
	for c := range headers {
		sb.WriteString("|" + strings.Repeat("-", widths[c]+2))
	}
	sb.WriteString("|------\n")
	for r := range cells {
		writeRow(cells[r], fmt.Sprintf("%d", l.Counts[r]))
	}
	fmt.Fprintf(&sb, "position %d of %d rows\n", l.Before, l.Total)
	return sb.String()
}

// HeavyHittersASCII renders heavy hitter items with share-of-total bars.
func HeavyHittersASCII(items []sketch.HHItem, total int64) string {
	var sb strings.Builder
	for _, it := range items {
		share := 0.0
		if total > 0 {
			share = float64(it.Count) / float64(total)
		}
		bar := strings.Repeat("#", int(share*50))
		fmt.Fprintf(&sb, "%-16s %10d  %5.1f%% %s\n", it.Value.String(), it.Count, share*100, bar)
	}
	return sb.String()
}

// MomentsASCII renders a column summary.
func MomentsASCII(col string, m *sketch.Moments) string {
	return fmt.Sprintf("%s: n=%d missing=%d min=%g max=%g mean=%.3f stddev=%.3f\n",
		col, m.Count, m.Missing, m.Min, m.Max, m.Mean(), sqrtOrZero(m.Variance()))
}

func sqrtOrZero(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// ValueOrEmpty formats a possibly-nil row cell.
func ValueOrEmpty(r table.Row, i int) string {
	if r == nil || i >= len(r) {
		return ""
	}
	return r[i].String()
}
