package table

import (
	"fmt"
	"math/rand/v2"
)

// This file is the randomized-table generator behind the testkit
// correctness harness (internal/testkit): from a single seed it produces
// a deterministic partitioned table exercising every column kind,
// missing-value density, dictionary size, and membership representation
// the sketches have kernels for. It lives in package table (rather than
// in the harness) because it is the ground-truth companion of the
// batch-iteration contract documented here: any new column or membership
// representation should extend the generator in the same change.
//
// Determinism is load-bearing: the cluster harness regenerates the same
// partitions on worker processes from the same (seed, rows, parts)
// triple, so partition tables — including their stable IDs, which
// randomized sketches derive per-partition seeds from — must be
// bit-identical across processes and runs. Everything derives from one
// PCG stream; no global or time-dependent state.

// GenInfo describes the value domains of a generated table, so harness
// code can build bucket specs and ground-truth predicates without
// re-deriving them from the data.
type GenInfo struct {
	// IntLo/IntHi bound the "gi" column values (inclusive lo, exclusive hi).
	IntLo, IntHi int64
	// DoubleLo/DoubleHi bound the "gd" column values.
	DoubleLo, DoubleHi float64
	// DateLo/DateHi bound the "gt" column values (millis since epoch).
	DateLo, DateHi int64
	// DictValues is the full candidate dictionary of the "gs" column,
	// sorted ascending; each partition's column dictionary is the subset
	// that actually occurs there.
	DictValues []string
	// MemberRows counts member (visible) rows across all partitions.
	MemberRows int64
}

// GenSchema is the schema of generated tables: one column per kind plus
// a computed column, so sketches over every accessor path are reachable
// from one table.
var GenSchema = NewSchema(
	ColumnDesc{Name: "gi", Kind: KindInt},
	ColumnDesc{Name: "gd", Kind: KindDouble},
	ColumnDesc{Name: "gs", Kind: KindString},
	ColumnDesc{Name: "gt", Kind: KindDate},
)

// genMix is a splitmix-style finalizer used for per-row membership
// decisions, so a membership shape is a pure function of (seed, part,
// row) and never depends on RNG draw order.
func genMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GenPartitions generates a deterministic randomized table: parts
// partitions of about rows physical rows each (sizes vary per partition;
// one partition may be empty), with IDs "<prefix>-p<k>". The same
// arguments always produce bit-identical tables. No NaN values are
// generated: missing cells model absent data, and NaN map-key semantics
// are deliberately out of the differential oracle's scope (the
// value-keyed reference path treats every NaN as a distinct key).
func GenPartitions(prefix string, seed uint64, rows, parts int) ([]*Table, GenInfo) {
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))

	// Value domains, drawn once so every partition shares them.
	dictSize := []int{1, 2, 17, 300, 5000}[rng.IntN(5)]
	intSpan := []int64{3, 40, 1000, 1 << 40}[rng.IntN(4)]
	intLo := rng.Int64N(1000) - 500
	dLo := rng.Float64()*200 - 100
	dHi := dLo + 1 + rng.Float64()*1000
	dateLo := int64(1500000000000) + rng.Int64N(1e9)
	dateSpan := 1 + rng.Int64N(1e9)
	// Per-column missing densities.
	missProb := func() float64 { return []float64{0, 0, 0.005, 0.25}[rng.IntN(4)] }
	missI, missD, missS, missT := missProb(), missProb(), missProb(), missProb()

	info := GenInfo{
		IntLo: intLo, IntHi: intLo + intSpan,
		DoubleLo: dLo, DoubleHi: dHi,
		DateLo: dateLo, DateHi: dateLo + dateSpan,
		DictValues: make([]string, dictSize),
	}
	for i := range info.DictValues {
		info.DictValues[i] = fmt.Sprintf("w%05d", i)
	}

	out := make([]*Table, parts)
	for p := 0; p < parts; p++ {
		n := rows/2 + rng.IntN(rows+1)
		if parts > 1 && p == parts-1 && rng.IntN(4) == 0 {
			n = 0 // empty-partition edge case
		}
		gi := make([]int64, n)
		gd := make([]float64, n)
		gs := make([]string, n)
		gt := make([]int64, n)
		var mi, md, ms, mt *Bitset
		mark := func(b **Bitset, i int) {
			if *b == nil {
				*b = NewBitset(n)
			}
			(*b).Set(i)
		}
		for i := 0; i < n; i++ {
			if rng.Float64() < missI {
				mark(&mi, i)
			} else {
				gi[i] = intLo + rng.Int64N(intSpan)
			}
			if rng.Float64() < missD {
				mark(&md, i)
			} else {
				gd[i] = dLo + rng.Float64()*(dHi-dLo)
			}
			if rng.Float64() < missS {
				mark(&ms, i)
			} else {
				// Skewed code draw so heavy hitters exist at every
				// dictionary size.
				c := rng.IntN(dictSize)
				if rng.IntN(2) == 0 {
					c = min(c, rng.IntN(dictSize))
				}
				gs[i] = info.DictValues[c]
			}
			if rng.Float64() < missT {
				mark(&mt, i)
			} else {
				gt[i] = dateLo + rng.Int64N(dateSpan)
			}
		}
		id := fmt.Sprintf("%s-p%d", prefix, p)
		t := New(id, GenSchema, []Column{
			NewIntColumn(KindInt, gi, mi),
			NewDoubleColumn(gd, md),
			NewStringColumn(gs, ms),
			NewIntColumn(KindDate, gt, mt),
		}, FullMembership(n))

		// A computed column over the stored int column exercises the
		// row-at-a-time fallback path of every kernel. The closure reads
		// only immutable column storage, so recomputation is exact.
		icol := t.cols[0]
		imiss := mi
		t, _ = t.WithColumn(id, "gc", NewComputedColumn(KindDouble, n, func(i int) Value {
			if imiss.Get(i) {
				return MissingValue(KindDouble)
			}
			return DoubleValue(float64(icol.(*IntColumn).Ints()[i]%97) * 0.5)
		}))

		// Membership shape: full, dense filter (bitmap), sparse filter,
		// or clustered ranges. Row decisions hash (seed, part, row) so
		// the shape is independent of value-draw order.
		switch shape := rng.IntN(4); shape {
		case 1:
			t = t.Filter(id, func(row int) bool {
				return genMix(seed^uint64(p)<<32^uint64(row))%10 < 6
			})
		case 2:
			t = t.Filter(id, func(row int) bool {
				return genMix(seed^uint64(p)<<32^uint64(row))%41 == 0
			})
		case 3:
			t = t.Filter(id, func(row int) bool {
				return row < n/8 || (row >= n/2 && row < n/2+n/8)
			})
		}
		info.MemberRows += int64(t.NumRows())
		out[p] = t
	}
	return out, info
}
