package table

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Value is a single cell value in a self-describing, gob-friendly form.
// It is used where rows must leave their column storage: next-K results,
// find-text results, RPC payloads, and the expression evaluator.
//
// Exactly one of I, D, S is meaningful, selected by Kind; a missing cell
// has Missing set and its payload fields are zero.
type Value struct {
	Kind    Kind
	Missing bool
	I       int64   // KindInt, KindDate (millis since epoch)
	D       float64 // KindDouble
	S       string  // KindString
}

// IntValue returns a non-missing integer Value.
func IntValue(v int64) Value { return Value{Kind: KindInt, I: v} }

// DoubleValue returns a non-missing double Value.
func DoubleValue(v float64) Value { return Value{Kind: KindDouble, D: v} }

// StringValue returns a non-missing string Value.
func StringValue(v string) Value { return Value{Kind: KindString, S: v} }

// DateValue returns a non-missing date Value from a time.Time.
func DateValue(t time.Time) Value { return Value{Kind: KindDate, I: t.UnixMilli()} }

// MissingValue returns a missing Value of the given kind.
func MissingValue(k Kind) Value { return Value{Kind: k, Missing: true} }

// Double converts the value to a float64. Strings return 0; callers must
// check Kind.Numeric() when a real number is required.
func (v Value) Double() float64 {
	switch v.Kind {
	case KindInt, KindDate:
		return float64(v.I)
	case KindDouble:
		return v.D
	default:
		return 0
	}
}

// String renders the value for display. Missing values render as the
// empty string, matching the CSV representation.
func (v Value) String() string {
	if v.Missing {
		return ""
	}
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindDouble:
		return strconv.FormatFloat(v.D, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return time.UnixMilli(v.I).UTC().Format("2006-01-02 15:04:05")
	default:
		return ""
	}
}

// Compare orders two values. Missing sorts before any present value;
// values of different kinds order by kind (this only happens across
// heterogeneous schemas, which the spreadsheet does not produce).
func (v Value) Compare(o Value) int {
	if v.Missing || o.Missing {
		switch {
		case v.Missing && o.Missing:
			return 0
		case v.Missing:
			return -1
		default:
			return 1
		}
	}
	if v.Kind != o.Kind {
		// Dates and ints compare numerically with doubles.
		if v.Kind.Numeric() && o.Kind.Numeric() {
			return cmpFloat(v.Double(), o.Double())
		}
		return cmpInt(int64(v.Kind), int64(o.Kind))
	}
	switch v.Kind {
	case KindInt, KindDate:
		return cmpInt(v.I, o.I)
	case KindDouble:
		return cmpFloat(v.D, o.D)
	case KindString:
		return strings.Compare(v.S, o.S)
	default:
		return 0
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Row is a materialized row: one Value per column of some schema.
type Row []Value

// CompareRows orders rows lexicographically over the given column
// positions and directions. Both rows must have the same layout.
func CompareRows(a, b Row, cols []int, asc []bool) int {
	for i, c := range cols {
		cmp := a[c].Compare(b[c])
		if cmp != 0 {
			if !asc[i] {
				return -cmp
			}
			return cmp
		}
	}
	return 0
}

// Equal reports whether two rows hold identical values in every column.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i].Compare(o[i]) != 0 || r[i].Missing != o[i].Missing {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a comma-separated list, for diagnostics.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return fmt.Sprintf("[%s]", strings.Join(parts, ", "))
}
