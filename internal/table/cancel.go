package table

// This file is the leaf-scan cancellation seam. The engine checks its
// context between chunk tasks, but a single task can still be a long
// scan: whole-partition sketches are never chunked, and chunking can be
// disabled outright. WithCancel threads a cancellation probe into the
// one substrate every scan path shares — the membership — so span,
// gather, row-at-a-time, and sampled scans all poll the probe about
// every cancelPollRows rows and stop mid-chunk when it fires.
//
// An aborted scan truncates silently: the kernel completes with partial
// tallies and no error. That is safe only because the engine discards
// the whole fold when the probe's context is cancelled — callers that
// install a probe must never use results produced after it fires
// (Table.Cancelled reports that).

// cancelPollRows is the probe polling interval in rows. It is a
// multiple of every kernel batch size, so splitting spans at poll
// boundaries preserves the exact batch sequence kernels would see on
// the unwrapped membership.
const cancelPollRows = 1 << 16

// cancelMembership wraps a membership so iteration polls probe. It
// yields exactly the rows of the base membership in the same order,
// but its spans are split at cancelPollRows boundaries (so they are
// not necessarily maximal runs) and any form may end early once the
// probe fires.
type cancelMembership struct {
	Membership
	probe func() bool
}

// Base returns the wrapped membership, letting kernels dispatch on the
// underlying representation (e.g. the dense-span fast path).
func (m cancelMembership) Base() Membership { return m.Membership }

// Iterate implements Membership, polling every cancelPollRows rows.
func (m cancelMembership) Iterate(yield func(i int) bool) {
	n := 0
	m.Membership.Iterate(func(i int) bool {
		if n++; n&(cancelPollRows-1) == 0 && m.probe() {
			return false
		}
		return yield(i)
	})
}

// IterateSpans implements Membership: base spans are re-yielded in
// windows of at most cancelPollRows rows with a poll before each.
func (m cancelMembership) IterateSpans(yield func(start, end int) bool) {
	m.Membership.IterateSpans(func(start, end int) bool {
		for a := start; a < end; a += cancelPollRows {
			if m.probe() {
				return false
			}
			b := a + cancelPollRows
			if b > end {
				b = end
			}
			if !yield(a, b) {
				return false
			}
		}
		return true
	})
}

// FillBatch implements Membership with a poll per call (batch buffers
// are far smaller than cancelPollRows). Returning n == 0 reads as
// "scan complete" to the caller, which is exactly the silent
// truncation the contract above allows.
func (m cancelMembership) FillBatch(buf []int32, from int) (int, int) {
	if m.probe() {
		return 0, from
	}
	return m.Membership.FillBatch(buf, from)
}

// Sample implements Membership, polling every cancelPollRows sampled
// rows (sampled scans touch far fewer rows per visit, so the interval
// is measured in visits).
func (m cancelMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	n := 0
	m.Membership.Sample(rate, seed, func(i int) bool {
		if n++; n&(cancelPollRows-1) == 0 && m.probe() {
			return false
		}
		return yield(i)
	})
}

// WithCancel returns a view of t whose scans poll probe and stop
// mid-chunk once it returns true. The view shares all storage with t;
// a nil probe returns t unchanged. Results computed from the view
// after the probe fires are truncated — callers must treat the whole
// computation as cancelled (see Cancelled).
func (t *Table) WithCancel(probe func() bool) *Table {
	if probe == nil {
		return t
	}
	return &Table{
		id:      t.id,
		schema:  t.schema,
		cols:    t.cols,
		members: cancelMembership{Membership: t.members, probe: probe},
	}
}

// Cancelled reports whether t carries a cancellation probe that has
// fired, i.e. whether scans over t may have been truncated.
func (t *Table) Cancelled() bool {
	cm, ok := t.members.(cancelMembership)
	return ok && cm.probe()
}
