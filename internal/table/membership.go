package table

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// Membership identifies which physical rows belong to a (possibly
// filtered) table. Derived tables share column storage with their parents
// and differ only in membership (paper §5.6). Implementations choose a
// representation by density: full, dense bitmap, or sparse index list.
//
// Sample visits a uniform random subset of member rows where each row is
// included independently with the given probability. Sampling is
// deterministic in the seed, which is how the engine makes randomized
// sketches replayable after failures (paper §5.8). It must be efficient:
// cost proportional to the number of samples plus, for bitmaps, a cheap
// word-skipping walk — never a full per-row scan.
type Membership interface {
	// Size returns the number of member rows.
	Size() int
	// Max returns the exclusive upper bound on physical row indexes
	// (the column length).
	Max() int
	// Contains reports whether physical row i is a member.
	Contains(i int) bool
	// Iterate visits member rows in increasing order until yield returns
	// false.
	Iterate(yield func(i int) bool)
	// Sample visits a uniform subset of member rows (each included with
	// probability rate, independently) in increasing order until yield
	// returns false. rate >= 1 visits every member row.
	Sample(rate float64, seed uint64, yield func(i int) bool)
}

// geomSkipper draws geometric gaps so that visiting every rate-th element
// on average samples each element independently with probability rate.
type geomSkipper struct {
	rng     *rand.Rand
	logOneM float64 // log(1-rate)
	all     bool
}

func newGeomSkipper(rate float64, seed uint64) *geomSkipper {
	if rate >= 1 {
		return &geomSkipper{all: true}
	}
	if rate < 0 {
		rate = 0
	}
	return &geomSkipper{
		rng:     rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		logOneM: math.Log1p(-rate),
	}
}

// next returns how many elements to skip before the next sampled element.
func (g *geomSkipper) next() int {
	if g.all {
		return 0
	}
	// Geometric(rate): floor(log(U)/log(1-rate)) has the distribution of
	// the number of failures before the first success.
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	skip := math.Log(u) / g.logOneM
	if skip >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(skip)
}

// fullMembership contains rows [0, n).
type fullMembership struct{ n int }

// FullMembership returns the membership containing all rows of an
// n-row table.
func FullMembership(n int) Membership { return fullMembership{n: n} }

func (m fullMembership) Size() int           { return m.n }
func (m fullMembership) Max() int            { return m.n }
func (m fullMembership) Contains(i int) bool { return i >= 0 && i < m.n }

func (m fullMembership) Iterate(yield func(i int) bool) {
	for i := 0; i < m.n; i++ {
		if !yield(i) {
			return
		}
	}
}

func (m fullMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	g := newGeomSkipper(rate, seed)
	for i := g.next(); i < m.n; i += g.next() + 1 {
		if !yield(i) {
			return
		}
	}
}

// BitmapMembership is the dense representation: one bit per physical row.
type BitmapMembership struct {
	bits *Bitset
	size int
}

// NewBitmapMembership wraps a bitset as a membership set.
func NewBitmapMembership(bits *Bitset) *BitmapMembership {
	return &BitmapMembership{bits: bits, size: bits.Count()}
}

// Size implements Membership.
func (m *BitmapMembership) Size() int { return m.size }

// Max implements Membership.
func (m *BitmapMembership) Max() int { return m.bits.Len() }

// Contains implements Membership.
func (m *BitmapMembership) Contains(i int) bool { return m.bits.Get(i) }

// Iterate implements Membership.
func (m *BitmapMembership) Iterate(yield func(i int) bool) { m.bits.Iterate(yield) }

// Sample implements Membership by walking the bitmap in increasing index
// order with geometric skips over member positions, skipping whole words
// by popcount (paper §5.6: "for dense tables we walk randomly the bitmap
// in increasing index order").
func (m *BitmapMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	g := newGeomSkipper(rate, seed)
	skip := g.next()
	for wi, w := range m.bits.Words {
		for w != 0 {
			pc := bits.OnesCount64(w)
			if skip >= pc {
				skip -= pc
				break
			}
			// Select the skip-th set bit within this word.
			for ; skip > 0; skip-- {
				w &= w - 1
			}
			if !yield(wi<<6 + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
			skip = g.next()
		}
	}
}

// SparseMembership is the sparse representation: a sorted list of member
// row indexes.
type SparseMembership struct {
	rows []int32 // sorted ascending
	max  int
}

// NewSparseMembership wraps a sorted index list with the given physical
// bound.
func NewSparseMembership(rows []int32, max int) *SparseMembership {
	return &SparseMembership{rows: rows, max: max}
}

// Size implements Membership.
func (m *SparseMembership) Size() int { return len(m.rows) }

// Max implements Membership.
func (m *SparseMembership) Max() int { return m.max }

// Contains implements Membership via binary search.
func (m *SparseMembership) Contains(i int) bool {
	lo, hi := 0, len(m.rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(m.rows[mid]) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(m.rows) && int(m.rows[lo]) == i
}

// Iterate implements Membership.
func (m *SparseMembership) Iterate(yield func(i int) bool) {
	for _, r := range m.rows {
		if !yield(int(r)) {
			return
		}
	}
}

// Sample implements Membership with geometric skips over the index list.
func (m *SparseMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	g := newGeomSkipper(rate, seed)
	for i := g.next(); i < len(m.rows); i += g.next() + 1 {
		if !yield(int(m.rows[i])) {
			return
		}
	}
}

// FilterMembership evaluates keep over every member row of parent and
// returns a new membership of the kept rows, choosing the dense bitmap
// representation when more than 1/32 of physical rows survive and the
// sparse list otherwise (paper §5.6).
func FilterMembership(parent Membership, keep func(i int) bool) Membership {
	var kept []int32
	parent.Iterate(func(i int) bool {
		if keep(i) {
			kept = append(kept, int32(i))
		}
		return true
	})
	max := parent.Max()
	if len(kept)*32 >= max && max > 0 {
		bits := NewBitset(max)
		for _, r := range kept {
			bits.Set(int(r))
		}
		return NewBitmapMembership(bits)
	}
	return NewSparseMembership(kept, max)
}
