package table

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// Membership identifies which physical rows belong to a (possibly
// filtered) table. Derived tables share column storage with their parents
// and differ only in membership (paper §5.6). Implementations choose a
// representation by density: full, dense bitmap, or sparse index list.
//
// Beyond the row-at-a-time Iterate, memberships expose two batch forms
// that sketch kernels scan with (the batch-iteration contract):
//
//   - IterateSpans yields maximal runs [start, end) of consecutive
//     member rows, strictly increasing and non-overlapping, covering
//     exactly the rows Iterate visits and in the same order.
//   - FillBatch copies member row indexes into a caller-owned buffer,
//     again in increasing Iterate order. The buffer is reused across
//     calls; callers must consume (or copy) its contents before the
//     next call. Each representation fills it with bulk code: full and
//     range memberships write arithmetic sequences, bitmaps decode
//     whole words, sparse lists copy slices.
//
// Both forms are deterministic: for a given membership value they yield
// the same sequence on every call, which the engine relies on for
// replayable scans (paper §5.8).
//
// Sample visits a uniform random subset of member rows where each row is
// included independently with the given probability. Sampling is
// deterministic in the seed, which is how the engine makes randomized
// sketches replayable after failures (paper §5.8). It must be efficient:
// cost proportional to the number of samples plus, for bitmaps, a cheap
// word-skipping walk — never a full per-row scan.
type Membership interface {
	// Size returns the number of member rows.
	Size() int
	// Max returns the exclusive upper bound on physical row indexes
	// (the column length).
	Max() int
	// Contains reports whether physical row i is a member.
	Contains(i int) bool
	// Iterate visits member rows in increasing order until yield returns
	// false.
	Iterate(yield func(i int) bool)
	// IterateSpans visits maximal runs [start, end) of consecutive member
	// rows in increasing order until yield returns false. Every yielded
	// span is non-empty (start < end).
	IterateSpans(yield func(start, end int) bool)
	// FillBatch copies the member rows at or after physical index from
	// into buf, in increasing order, and returns the number n of rows
	// written plus the cursor to pass as from on the next call. n is 0
	// (and the scan is complete) only when no members remain; a full scan
	// starts at from = 0 and stops at the first n == 0.
	FillBatch(buf []int32, from int) (n, next int)
	// Sample visits a uniform subset of member rows (each included with
	// probability rate, independently) in increasing order until yield
	// returns false. rate >= 1 visits every member row.
	Sample(rate float64, seed uint64, yield func(i int) bool)
}

// geomSkipper draws geometric gaps so that visiting every rate-th element
// on average samples each element independently with probability rate.
type geomSkipper struct {
	rng     *rand.Rand
	logOneM float64 // log(1-rate)
	all     bool
}

func newGeomSkipper(rate float64, seed uint64) *geomSkipper {
	if rate >= 1 {
		return &geomSkipper{all: true}
	}
	if rate < 0 {
		rate = 0
	}
	return &geomSkipper{
		rng:     rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		logOneM: math.Log1p(-rate),
	}
}

// next returns how many elements to skip before the next sampled element.
func (g *geomSkipper) next() int {
	if g.all {
		return 0
	}
	// Geometric(rate): floor(log(U)/log(1-rate)) has the distribution of
	// the number of failures before the first success.
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	skip := math.Log(u) / g.logOneM
	if skip >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(skip)
}

// fullMembership contains rows [0, n).
type fullMembership struct{ n int }

// FullMembership returns the membership containing all rows of an
// n-row table.
func FullMembership(n int) Membership { return fullMembership{n: n} }

func (m fullMembership) Size() int           { return m.n }
func (m fullMembership) Max() int            { return m.n }
func (m fullMembership) Contains(i int) bool { return i >= 0 && i < m.n }

func (m fullMembership) Iterate(yield func(i int) bool) {
	for i := 0; i < m.n; i++ {
		if !yield(i) {
			return
		}
	}
}

func (m fullMembership) IterateSpans(yield func(start, end int) bool) {
	if m.n > 0 {
		yield(0, m.n)
	}
}

func (m fullMembership) FillBatch(buf []int32, from int) (int, int) {
	return fillSequential(buf, from, 0, m.n)
}

func (m fullMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	g := newGeomSkipper(rate, seed)
	for i := g.next(); i < m.n; i += g.next() + 1 {
		if !yield(i) {
			return
		}
	}
}

// fillSequential writes the arithmetic sequence [max(from,lo), hi) into
// buf; shared by the full and range representations.
func fillSequential(buf []int32, from, lo, hi int) (int, int) {
	if from < lo {
		from = lo
	}
	n := hi - from
	if n <= 0 {
		return 0, hi
	}
	if n > len(buf) {
		n = len(buf)
	}
	for k := 0; k < n; k++ {
		buf[k] = int32(from + k)
	}
	return n, from + n
}

// BitmapMembership is the dense representation: one bit per physical row,
// optionally restricted to a physical row range [lo, hi) so that the
// engine can shard one bitmap scan into independent chunks without
// copying bits (Restrict).
type BitmapMembership struct {
	bits   *Bitset
	lo, hi int // member rows are the set bits within [lo, hi)
	size   int
}

// NewBitmapMembership wraps a bitset as a membership set.
func NewBitmapMembership(bits *Bitset) *BitmapMembership {
	return &BitmapMembership{bits: bits, lo: 0, hi: bits.Len(), size: bits.Count()}
}

// Size implements Membership.
func (m *BitmapMembership) Size() int { return m.size }

// Max implements Membership.
func (m *BitmapMembership) Max() int { return m.bits.Len() }

// Contains implements Membership.
func (m *BitmapMembership) Contains(i int) bool {
	return i >= m.lo && i < m.hi && m.bits.Get(i)
}

// iterateWords visits each bitmap word overlapping [lo, hi), with bits
// outside the range masked off; zero words are skipped.
func (m *BitmapMembership) iterateWords(yield func(wi int, w uint64) bool) {
	if m.lo >= m.hi {
		return
	}
	loW, hiW := m.lo>>6, (m.hi-1)>>6
	for wi := loW; wi <= hiW; wi++ {
		w := m.bits.Words[wi]
		if wi == loW {
			w &= ^uint64(0) << (uint(m.lo) & 63)
		}
		if wi == hiW {
			w &= ^uint64(0) >> (63 - uint(m.hi-1)&63)
		}
		if w != 0 && !yield(wi, w) {
			return
		}
	}
}

// Iterate implements Membership.
func (m *BitmapMembership) Iterate(yield func(i int) bool) {
	m.iterateWords(func(wi int, w uint64) bool {
		base := wi << 6
		for w != 0 {
			if !yield(base + bits.TrailingZeros64(w)) {
				return false
			}
			w &= w - 1
		}
		return true
	})
}

// IterateSpans implements Membership by alternating NextSet/NextClear,
// which walk whole words of the bitmap.
func (m *BitmapMembership) IterateSpans(yield func(start, end int) bool) {
	i := m.bits.NextSet(m.lo)
	for i >= 0 && i < m.hi {
		end := m.bits.NextClear(i)
		if end > m.hi {
			end = m.hi
		}
		if !yield(i, end) || end >= m.hi {
			return
		}
		i = m.bits.NextSet(end)
	}
}

// FillBatch implements Membership by decoding set bits word at a time.
func (m *BitmapMembership) FillBatch(buf []int32, from int) (int, int) {
	if from < m.lo {
		from = m.lo
	}
	if from >= m.hi || len(buf) == 0 {
		return 0, m.hi
	}
	wi, hiW := from>>6, (m.hi-1)>>6
	w := m.bits.Words[wi] & (^uint64(0) << (uint(from) & 63))
	n := 0
	for {
		if wi == hiW {
			w &= ^uint64(0) >> (63 - uint(m.hi-1)&63)
		}
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			buf[n] = int32(base + tz)
			n++
			w &= w - 1
			if n == len(buf) {
				return n, base + tz + 1
			}
		}
		wi++
		if wi > hiW {
			return n, m.hi
		}
		w = m.bits.Words[wi]
	}
}

// Sample implements Membership by walking the bitmap in increasing index
// order with geometric skips over member positions, skipping whole words
// by popcount (paper §5.6: "for dense tables we walk randomly the bitmap
// in increasing index order").
func (m *BitmapMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	g := newGeomSkipper(rate, seed)
	skip := g.next()
	m.iterateWords(func(wi int, w uint64) bool {
		for w != 0 {
			pc := bits.OnesCount64(w)
			if skip >= pc {
				skip -= pc
				break
			}
			// Select the skip-th set bit within this word.
			for ; skip > 0; skip-- {
				w &= w - 1
			}
			if !yield(wi<<6 + bits.TrailingZeros64(w)) {
				return false
			}
			w &= w - 1
			skip = g.next()
		}
		return true
	})
}

// SparseMembership is the sparse representation: a sorted list of member
// row indexes.
type SparseMembership struct {
	rows []int32 // sorted ascending
	max  int
}

// NewSparseMembership wraps a sorted index list with the given physical
// bound.
func NewSparseMembership(rows []int32, max int) *SparseMembership {
	return &SparseMembership{rows: rows, max: max}
}

// Size implements Membership.
func (m *SparseMembership) Size() int { return len(m.rows) }

// Max implements Membership.
func (m *SparseMembership) Max() int { return m.max }

// search returns the first position in rows whose value is >= i.
func (m *SparseMembership) search(i int) int {
	lo, hi := 0, len(m.rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(m.rows[mid]) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains implements Membership via binary search.
func (m *SparseMembership) Contains(i int) bool {
	p := m.search(i)
	return p < len(m.rows) && int(m.rows[p]) == i
}

// Iterate implements Membership.
func (m *SparseMembership) Iterate(yield func(i int) bool) {
	for _, r := range m.rows {
		if !yield(int(r)) {
			return
		}
	}
}

// IterateSpans implements Membership by grouping consecutive indexes.
func (m *SparseMembership) IterateSpans(yield func(start, end int) bool) {
	rows := m.rows
	for i := 0; i < len(rows); {
		j := i + 1
		for j < len(rows) && rows[j] == rows[j-1]+1 {
			j++
		}
		if !yield(int(rows[i]), int(rows[j-1])+1) {
			return
		}
		i = j
	}
}

// FillBatch implements Membership with a slice copy.
func (m *SparseMembership) FillBatch(buf []int32, from int) (int, int) {
	pos := 0
	if from > 0 {
		pos = m.search(from)
	}
	n := copy(buf, m.rows[pos:])
	if n == 0 {
		return 0, m.max
	}
	return n, int(m.rows[pos+n-1]) + 1
}

// Sample implements Membership with geometric skips over the index list.
func (m *SparseMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	g := newGeomSkipper(rate, seed)
	for i := g.next(); i < len(m.rows); i += g.next() + 1 {
		if !yield(int(m.rows[i])) {
			return
		}
	}
}

// Restrict returns the membership of m's member rows within the physical
// row range [lo, hi), sharing m's underlying storage (no bit or index
// copying for the built-in representations). Max() is preserved, so a
// restricted membership is still a valid membership of the same table.
// The engine uses Restrict to shard one partition's scan into
// independently summarized chunks (paper §5.3's leaf parallelism applied
// within a micropartition).
func Restrict(m Membership, lo, hi int) Membership {
	if lo < 0 {
		lo = 0
	}
	if hi > m.Max() {
		hi = m.Max()
	}
	if hi < lo {
		hi = lo
	}
	switch mm := m.(type) {
	case fullMembership:
		return RangeMembership{Lo: lo, Hi: hi, Bound: mm.n}
	case RangeMembership:
		l, h := max(lo, mm.Lo), min(hi, mm.Hi)
		if h < l {
			h = l
		}
		return RangeMembership{Lo: l, Hi: h, Bound: mm.Bound}
	case *BitmapMembership:
		l, h := max(lo, mm.lo), min(hi, mm.hi)
		if h < l {
			h = l
		}
		return &BitmapMembership{bits: mm.bits, lo: l, hi: h, size: mm.bits.CountRange(l, h)}
	case *SparseMembership:
		a, b := mm.search(lo), mm.search(hi)
		return &SparseMembership{rows: mm.rows[a:b], max: mm.max}
	default:
		// Unknown representation: collect the member rows in range.
		var rows []int32
		m.Iterate(func(i int) bool {
			if i >= hi {
				return false
			}
			if i >= lo {
				rows = append(rows, int32(i))
			}
			return true
		})
		return NewSparseMembership(rows, m.Max())
	}
}

// FilterMembership evaluates keep over every member row of parent and
// returns a new membership of the kept rows, choosing the dense bitmap
// representation when more than 1/32 of physical rows survive and the
// sparse list otherwise (paper §5.6).
func FilterMembership(parent Membership, keep func(i int) bool) Membership {
	var kept []int32
	parent.Iterate(func(i int) bool {
		if keep(i) {
			kept = append(kept, int32(i))
		}
		return true
	})
	max := parent.Max()
	if len(kept)*32 >= max && max > 0 {
		bits := NewBitset(max)
		for _, r := range kept {
			bits.Set(int(r))
		}
		return NewBitmapMembership(bits)
	}
	return NewSparseMembership(kept, max)
}
