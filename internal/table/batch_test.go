package table

import (
	"reflect"
	"testing"
)

// testMemberships returns one membership per representation (plus
// Restrict views of each), all over the same 1000-row physical space
// and with deterministic contents.
func testMemberships() map[string]Membership {
	const n = 1000
	bits := NewBitset(n)
	for i := 0; i < n; i++ {
		// Deterministic mix: ~half the rows, irregular spacing.
		x := uint64(i) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		if x&3 != 0 {
			bits.Set(i)
		}
	}
	var sparse []int32
	for i := 3; i < n; i += 17 {
		sparse = append(sparse, int32(i))
	}
	ms := map[string]Membership{
		"full":   FullMembership(n),
		"empty":  FullMembership(0),
		"range":  NewRangeMembership(137, 803, n),
		"bitmap": NewBitmapMembership(bits),
		"sparse": NewSparseMembership(sparse, n),
	}
	ms["full/restricted"] = Restrict(ms["full"], 250, 750)
	ms["range/restricted"] = Restrict(ms["range"], 300, 400)
	ms["bitmap/restricted"] = Restrict(ms["bitmap"], 63, 641)
	ms["sparse/restricted"] = Restrict(ms["sparse"], 100, 900)
	ms["bitmap/empty-slice"] = Restrict(ms["bitmap"], 500, 500)
	return ms
}

func collectSpans(m Membership) []int {
	var out []int
	m.IterateSpans(func(start, end int) bool {
		for i := start; i < end; i++ {
			out = append(out, i)
		}
		return true
	})
	return out
}

func collectBatches(m Membership, bufSize int) []int {
	buf := make([]int32, bufSize)
	var out []int
	for from := 0; ; {
		n, next := m.FillBatch(buf, from)
		if n == 0 {
			break
		}
		for _, r := range buf[:n] {
			out = append(out, int(r))
		}
		from = next
	}
	return out
}

// TestBatchIterationMatchesIterate is the batch-iteration contract:
// IterateSpans and FillBatch (at several buffer sizes) visit exactly the
// rows Iterate visits, in the same order, for every representation.
func TestBatchIterationMatchesIterate(t *testing.T) {
	for name, m := range testMemberships() {
		want := collect(m)
		if got := collectSpans(m); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: IterateSpans = %v rows, Iterate = %v rows", name, len(got), len(want))
		}
		for _, bufSize := range []int{1, 3, 64, 1000} {
			if got := collectBatches(m, bufSize); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: FillBatch(buf=%d) = %v rows, Iterate = %v rows", name, bufSize, len(got), len(want))
			}
		}
		if len(want) != m.Size() {
			t.Errorf("%s: Iterate visited %d rows, Size = %d", name, len(want), m.Size())
		}
	}
}

// TestSpansAreMaximal checks that yielded spans are non-empty, strictly
// increasing, and separated by at least one non-member row.
func TestSpansAreMaximal(t *testing.T) {
	for name, m := range testMemberships() {
		prevEnd := -1
		m.IterateSpans(func(start, end int) bool {
			if start >= end {
				t.Errorf("%s: empty span [%d, %d)", name, start, end)
			}
			if start <= prevEnd {
				t.Errorf("%s: span [%d, %d) not past previous end %d", name, start, end, prevEnd)
			}
			if prevEnd >= 0 && start == prevEnd {
				t.Errorf("%s: spans [..%d) and [%d..) should have merged", name, prevEnd, start)
			}
			prevEnd = end
			return true
		})
	}
}

// TestBatchEarlyStop checks that IterateSpans honors a false yield.
func TestBatchEarlyStop(t *testing.T) {
	for name, m := range testMemberships() {
		if m.Size() == 0 {
			continue
		}
		calls := 0
		m.IterateSpans(func(start, end int) bool {
			calls++
			return false
		})
		if calls != 1 {
			t.Errorf("%s: IterateSpans made %d calls after false yield", name, calls)
		}
	}
}

// TestFillBatchFromCursor checks that FillBatch resumes correctly from
// an arbitrary physical cursor, not only from returned cursors.
func TestFillBatchFromCursor(t *testing.T) {
	for name, m := range testMemberships() {
		all := collect(m)
		for _, from := range []int{0, 1, 64, 137, 500, 999, 1000} {
			var want []int
			for _, r := range all {
				if r >= from {
					want = append(want, r)
				}
			}
			buf := make([]int32, 100)
			var got []int
			cur := from
			for {
				n, next := m.FillBatch(buf, cur)
				if n == 0 {
					break
				}
				for _, r := range buf[:n] {
					got = append(got, int(r))
				}
				cur = next
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: FillBatch from %d = %d rows, want %d", name, from, len(got), len(want))
			}
		}
	}
}

// TestRestrict checks that Restrict preserves Max and keeps exactly the
// member rows inside the range, for every representation.
func TestRestrict(t *testing.T) {
	for name, m := range testMemberships() {
		lo, hi := 100, 700
		r := Restrict(m, lo, hi)
		if r.Max() != m.Max() {
			t.Errorf("%s: Restrict changed Max %d -> %d", name, m.Max(), r.Max())
		}
		var want []int
		for _, row := range collect(m) {
			if row >= lo && row < hi {
				want = append(want, row)
			}
		}
		got := collect(r)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Restrict(%d,%d) = %d rows, want %d", name, lo, hi, len(got), len(want))
		}
		if r.Size() != len(want) {
			t.Errorf("%s: Restrict Size = %d, want %d", name, r.Size(), len(want))
		}
		for _, row := range []int{0, lo - 1, lo, (lo + hi) / 2, hi - 1, hi, 999} {
			want := m.Contains(row) && row >= lo && row < hi
			if r.Contains(row) != want {
				t.Errorf("%s: Restrict Contains(%d) = %v, want %v", name, row, r.Contains(row), want)
			}
		}
	}
}

// TestRestrictedSampleWithinBounds checks that sampling a restricted
// membership stays in bounds and is deterministic in the seed.
func TestRestrictedSampleWithinBounds(t *testing.T) {
	for name, m := range testMemberships() {
		r := Restrict(m, 200, 600)
		var a, b []int
		r.Sample(0.3, 7, func(i int) bool { a = append(a, i); return true })
		r.Sample(0.3, 7, func(i int) bool { b = append(b, i); return true })
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: restricted Sample not deterministic", name)
		}
		for _, i := range a {
			if !r.Contains(i) {
				t.Errorf("%s: sampled non-member row %d", name, i)
			}
		}
	}
}

// TestSliceTable checks the generic Table.Slice over a filtered table.
func TestSliceTable(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	schema := NewSchema(ColumnDesc{Name: "v", Kind: KindInt})
	tab := New("t", schema, []Column{NewIntColumn(KindInt, vals, nil)}, FullMembership(100))
	filtered := tab.Filter("t/f", func(row int) bool { return row%3 == 0 })
	sliced := filtered.Slice("t/f#30", 30, 60)
	var got []int
	sliced.Members().Iterate(func(i int) bool { got = append(got, i); return true })
	want := []int{30, 33, 36, 39, 42, 45, 48, 51, 54, 57}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Slice rows = %v, want %v", got, want)
	}
	if sliced.Members().Max() != 100 {
		t.Errorf("Slice Max = %d, want 100", sliced.Members().Max())
	}
}

func TestBitsetNextClear(t *testing.T) {
	b := NewBitset(130)
	for i := 0; i < 130; i++ {
		b.Set(i)
	}
	b.Clear(0)
	b.Clear(64)
	b.Clear(100)
	cases := [][2]int{{0, 0}, {1, 64}, {64, 64}, {65, 100}, {101, 130}, {129, 130}, {130, 130}, {500, 130}}
	for _, c := range cases {
		if got := b.NextClear(c[0]); got != c[1] {
			t.Errorf("NextClear(%d) = %d, want %d", c[0], got, c[1])
		}
	}
	var nilB *Bitset
	if got := nilB.NextClear(5); got != 0 {
		t.Errorf("nil NextClear = %d, want 0", got)
	}
	// All-set tail: NextClear inside the last partial word clamps to N.
	b2 := NewBitset(70)
	for i := 0; i < 70; i++ {
		b2.Set(i)
	}
	if got := b2.NextClear(65); got != 70 {
		t.Errorf("NextClear(65) on all-set = %d, want 70", got)
	}
}

func TestBitsetCountRange(t *testing.T) {
	b := NewBitset(300)
	for i := 0; i < 300; i += 7 {
		b.Set(i)
	}
	for _, c := range [][2]int{{0, 300}, {0, 0}, {1, 1}, {0, 1}, {6, 8}, {63, 65}, {64, 128}, {100, 250}, {-5, 1000}} {
		lo, hi := c[0], c[1]
		want := 0
		for i := max(lo, 0); i < min(hi, 300); i++ {
			if b.Get(i) {
				want++
			}
		}
		if got := b.CountRange(lo, hi); got != want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}
