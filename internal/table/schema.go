package table

import (
	"fmt"
	"strings"
)

// ColumnDesc describes one column: its name and value kind.
type ColumnDesc struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of column descriptions. Schemas are
// immutable; Append and Project return new schemas. All fields are
// exported so schemas serialize with encoding/gob and encoding/json.
type Schema struct {
	Columns []ColumnDesc
}

// NewSchema builds a schema from column descriptions. Column names must
// be unique.
func NewSchema(cols ...ColumnDesc) *Schema {
	s := &Schema{Columns: cols}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if seen[c.Name] {
			panic(fmt.Sprintf("table: duplicate column %q in schema", c.Name))
		}
		seen[c.Name] = true
	}
	return s
}

// NumColumns returns the schema width.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or -1 if absent.
// Schemas are narrow (hundreds of columns at most) and lookups happen per
// query, not per row, so a linear scan is simplest and serialization-safe.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the description of the named column.
func (s *Schema) Column(name string) (ColumnDesc, error) {
	if i := s.ColumnIndex(name); i >= 0 {
		return s.Columns[i], nil
	}
	return ColumnDesc{}, fmt.Errorf("table: no column %q", name)
}

// Append returns a new schema with one more column.
func (s *Schema) Append(cd ColumnDesc) *Schema {
	cols := make([]ColumnDesc, len(s.Columns)+1)
	copy(cols, s.Columns)
	cols[len(s.Columns)] = cd
	return NewSchema(cols...)
}

// Project returns a new schema containing only the named columns, in the
// given order.
func (s *Schema) Project(names []string) (*Schema, error) {
	cols := make([]ColumnDesc, 0, len(names))
	for _, n := range names {
		cd, err := s.Column(n)
		if err != nil {
			return nil, err
		}
		cols = append(cols, cd)
	}
	return NewSchema(cols...), nil
}

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "name:kind, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}
