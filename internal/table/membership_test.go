package table

import (
	"math"
	"testing"
	"testing/quick"
)

func collect(m Membership) []int {
	var out []int
	m.Iterate(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

func TestFullMembership(t *testing.T) {
	m := FullMembership(5)
	if m.Size() != 5 || m.Max() != 5 {
		t.Fatalf("Size/Max = %d/%d", m.Size(), m.Max())
	}
	if !m.Contains(0) || !m.Contains(4) || m.Contains(5) || m.Contains(-1) {
		t.Error("Contains wrong")
	}
	got := collect(m)
	if len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Errorf("Iterate = %v", got)
	}
}

func TestBitmapMembership(t *testing.T) {
	bits := NewBitset(130)
	for _, i := range []int{0, 63, 64, 65, 127, 129} {
		bits.Set(i)
	}
	m := NewBitmapMembership(bits)
	if m.Size() != 6 || m.Max() != 130 {
		t.Fatalf("Size/Max = %d/%d", m.Size(), m.Max())
	}
	got := collect(m)
	want := []int{0, 63, 64, 65, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("Iterate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Iterate = %v, want %v", got, want)
		}
	}
	if !m.Contains(64) || m.Contains(1) {
		t.Error("Contains wrong")
	}
}

func TestSparseMembership(t *testing.T) {
	m := NewSparseMembership([]int32{2, 7, 11, 40}, 100)
	if m.Size() != 4 || m.Max() != 100 {
		t.Fatalf("Size/Max = %d/%d", m.Size(), m.Max())
	}
	if !m.Contains(7) || m.Contains(8) || m.Contains(41) {
		t.Error("Contains wrong")
	}
	got := collect(m)
	if len(got) != 4 || got[3] != 40 {
		t.Errorf("Iterate = %v", got)
	}
}

func TestFilterMembershipRepresentation(t *testing.T) {
	// Dense survivor set -> bitmap.
	dense := FilterMembership(FullMembership(1000), func(i int) bool { return i%2 == 0 })
	if _, ok := dense.(*BitmapMembership); !ok {
		t.Errorf("dense filter got %T, want *BitmapMembership", dense)
	}
	if dense.Size() != 500 {
		t.Errorf("dense size = %d", dense.Size())
	}
	// Sparse survivor set -> index list.
	sparse := FilterMembership(FullMembership(1000), func(i int) bool { return i%100 == 0 })
	if _, ok := sparse.(*SparseMembership); !ok {
		t.Errorf("sparse filter got %T, want *SparseMembership", sparse)
	}
	if sparse.Size() != 10 {
		t.Errorf("sparse size = %d", sparse.Size())
	}
	// Chained filters compose.
	chained := FilterMembership(dense, func(i int) bool { return i%10 == 0 })
	if chained.Size() != 100 {
		t.Errorf("chained size = %d", chained.Size())
	}
}

// sampleStats runs Sample and returns the count and whether output was
// sorted and within membership.
func sampleStats(t *testing.T, m Membership, rate float64, seed uint64) int {
	t.Helper()
	prev := -1
	count := 0
	m.Sample(rate, seed, func(i int) bool {
		if i <= prev {
			t.Fatalf("sample out of order: %d after %d", i, prev)
		}
		if !m.Contains(i) {
			t.Fatalf("sampled non-member row %d", i)
		}
		prev = i
		count++
		return true
	})
	return count
}

func TestSampleRateAndDeterminism(t *testing.T) {
	memberships := map[string]Membership{
		"full": FullMembership(100000),
		"bitmap": FilterMembership(FullMembership(200000), func(i int) bool {
			return i%2 == 0
		}),
		"sparse": NewSparseMembership(func() []int32 {
			rows := make([]int32, 100000)
			for i := range rows {
				rows[i] = int32(i * 3)
			}
			return rows
		}(), 300000),
	}
	for name, m := range memberships {
		t.Run(name, func(t *testing.T) {
			const rate = 0.1
			n := sampleStats(t, m, rate, 42)
			want := float64(m.Size()) * rate
			// Binomial(100000, 0.1): sd ~ 95; allow 6 sd.
			if math.Abs(float64(n)-want) > 6*math.Sqrt(want*(1-rate)) {
				t.Errorf("sample count %d too far from expectation %.0f", n, want)
			}
			// Determinism: same seed, same sample.
			var a, b []int
			m.Sample(rate, 7, func(i int) bool { a = append(a, i); return true })
			m.Sample(rate, 7, func(i int) bool { b = append(b, i); return true })
			if len(a) != len(b) {
				t.Fatalf("same seed gave %d vs %d samples", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
				}
			}
			// Different seeds should (overwhelmingly) differ.
			var c []int
			m.Sample(rate, 8, func(i int) bool { c = append(c, i); return true })
			same := len(c) == len(a)
			if same {
				for i := range a {
					if a[i] != c[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Error("different seeds produced identical samples")
			}
		})
	}
}

func TestSampleRateOneVisitsAll(t *testing.T) {
	m := FullMembership(1000)
	if got := sampleStats(t, m, 1.0, 1); got != 1000 {
		t.Errorf("rate 1.0 visited %d rows, want 1000", got)
	}
	if got := sampleStats(t, m, 2.0, 1); got != 1000 {
		t.Errorf("rate 2.0 visited %d rows, want 1000", got)
	}
}

func TestSampleRateZero(t *testing.T) {
	m := FullMembership(10000)
	if got := sampleStats(t, m, 0, 1); got != 0 {
		t.Errorf("rate 0 visited %d rows, want 0", got)
	}
}

func TestSampleEarlyStop(t *testing.T) {
	m := FullMembership(100000)
	count := 0
	m.Sample(0.5, 3, func(i int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d, want 10", count)
	}
}

// TestSampleUniformity checks that, across many seeds, each region of the
// membership is sampled at close to the nominal rate (a coarse uniformity
// check; fine-grained chi-squared happens in the sketch accuracy tests).
func TestSampleUniformity(t *testing.T) {
	const n = 10000
	const buckets = 10
	m := FullMembership(n)
	counts := make([]int, buckets)
	total := 0
	for seed := uint64(0); seed < 50; seed++ {
		m.Sample(0.05, seed, func(i int) bool {
			counts[i*buckets/n]++
			total++
			return true
		})
	}
	mean := float64(total) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-mean) > 0.15*mean {
			t.Errorf("bucket %d has %d samples, mean %.0f (>15%% off)", b, c, mean)
		}
	}
}

func TestBitsetQuick(t *testing.T) {
	// Property: set bits are exactly those reported by Get/Iterate/NextSet.
	f := func(idxs []uint16) bool {
		const n = 1 << 16
		b := NewBitset(n)
		want := make(map[int]bool)
		for _, x := range idxs {
			b.Set(int(x))
			want[int(x)] = true
		}
		if b.Count() != len(want) {
			return false
		}
		got := make(map[int]bool)
		b.Iterate(func(i int) bool { got[i] = true; return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !b.Get(i) || !got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBitsetNextSet(t *testing.T) {
	b := NewBitset(200)
	b.Set(5)
	b.Set(64)
	b.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {65, 199}, {199, 199},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	b.Clear(199)
	if got := b.NextSet(65); got != -1 {
		t.Errorf("NextSet(65) = %d, want -1", got)
	}
	clone := b.Clone()
	clone.Set(0)
	if b.Get(0) {
		t.Error("Clone should not share storage")
	}
}
