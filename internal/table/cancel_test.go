package table

import (
	"reflect"
	"testing"
)

// collectAll gathers the rows a membership yields through each of its
// four scan forms.
func collectAll(m Membership) (iter, spans, batch, sample []int) {
	m.Iterate(func(i int) bool { iter = append(iter, i); return true })
	m.IterateSpans(func(start, end int) bool {
		for i := start; i < end; i++ {
			spans = append(spans, i)
		}
		return true
	})
	buf := make([]int32, 100)
	for from := 0; ; {
		n, next := m.FillBatch(buf, from)
		if n == 0 {
			break
		}
		for _, r := range buf[:n] {
			batch = append(batch, int(r))
		}
		from = next
	}
	m.Sample(0.5, 42, func(i int) bool { sample = append(sample, i); return true })
	return
}

// TestCancelMembershipEquivalence pins the wrapper's transparency: with
// a probe that never fires, every scan form yields exactly the base
// membership's rows in the same order — including the sampled sequence,
// which bit-identical replay depends on.
func TestCancelMembershipEquivalence(t *testing.T) {
	bits := NewBitset(200000)
	for i := 0; i < 200000; i++ {
		if i%3 != 0 {
			bits.Set(i)
		}
	}
	for name, base := range map[string]Membership{
		"full":   FullMembership(200000),
		"range":  NewRangeMembership(777, 150001, 200000),
		"bitmap": NewBitmapMembership(bits),
	} {
		t.Run(name, func(t *testing.T) {
			wrapped := cancelMembership{Membership: base, probe: func() bool { return false }}
			i0, s0, b0, p0 := collectAll(base)
			i1, s1, b1, p1 := collectAll(wrapped)
			if !reflect.DeepEqual(i0, i1) {
				t.Error("Iterate differs under cancel wrapper")
			}
			if !reflect.DeepEqual(s0, s1) {
				t.Error("IterateSpans coverage differs under cancel wrapper")
			}
			if !reflect.DeepEqual(b0, b1) {
				t.Error("FillBatch differs under cancel wrapper")
			}
			if !reflect.DeepEqual(p0, p1) {
				t.Error("Sample sequence differs under cancel wrapper")
			}
			if wrapped.Size() != base.Size() || wrapped.Max() != base.Max() {
				t.Error("Size/Max differ under cancel wrapper")
			}
		})
	}
}

// TestCancelMembershipStopsMidScan pins the point of the wrapper: a
// probe that fires partway stops every scan form well short of the
// membership, within one polling interval.
func TestCancelMembershipStopsMidScan(t *testing.T) {
	const n = 10 * cancelPollRows
	fired := false
	seen := 0
	m := cancelMembership{Membership: FullMembership(n), probe: func() bool { return fired }}

	budget := 2 * cancelPollRows // fire after ~1 interval, allow 1 more
	seen = 0
	m.Iterate(func(i int) bool {
		seen++
		fired = seen >= cancelPollRows
		return true
	})
	if seen >= budget {
		t.Errorf("Iterate visited %d rows after probe fired (budget %d)", seen, budget)
	}

	fired, seen = false, 0
	m.IterateSpans(func(start, end int) bool {
		seen += end - start
		fired = true
		return true
	})
	if seen > cancelPollRows {
		t.Errorf("IterateSpans yielded %d rows after probe fired (window %d)", seen, cancelPollRows)
	}

	fired = true
	if got, _ := m.FillBatch(make([]int32, 64), 0); got != 0 {
		t.Errorf("FillBatch returned %d rows with probe fired, want 0", got)
	}

	fired, seen = false, 0
	m.Sample(1, 1, func(i int) bool {
		seen++
		fired = seen >= cancelPollRows
		return true
	})
	if seen >= budget {
		t.Errorf("Sample visited %d rows after probe fired (budget %d)", seen, budget)
	}
}

// TestTableWithCancel pins the Table-level plumbing: WithCancel shares
// storage, Cancelled reflects the probe, and a nil probe is the
// identity.
func TestTableWithCancel(t *testing.T) {
	cb := NewColumnBuilder(KindInt, 4)
	for i := 0; i < 4; i++ {
		cb.Append(Value{Kind: KindInt, I: int64(i)})
	}
	schema := NewSchema(ColumnDesc{Name: "x", Kind: KindInt})
	tbl := New("t", schema, []Column{cb.Freeze()}, FullMembership(4))

	if tbl.WithCancel(nil) != tbl {
		t.Error("WithCancel(nil) should return the receiver")
	}
	if tbl.Cancelled() {
		t.Error("unprobed table reports Cancelled")
	}
	fired := false
	ct := tbl.WithCancel(func() bool { return fired })
	if ct.Cancelled() {
		t.Error("Cancelled true before probe fires")
	}
	fired = true
	if !ct.Cancelled() {
		t.Error("Cancelled false after probe fires")
	}
	if ct.NumRows() != tbl.NumRows() || ct.ID() != tbl.ID() {
		t.Error("WithCancel changed table identity")
	}
}
