package table

import "fmt"

// Table is an immutable view over columnar storage: a schema, one Column
// per schema entry, and a Membership selecting visible rows. Filtering
// and adding computed columns produce new Tables sharing the same column
// storage, which keeps derived tables cheap and disposable (paper §5.6).
type Table struct {
	id      string
	schema  *Schema
	cols    []Column
	members Membership
}

// New assembles a table. All columns must have the same physical length,
// and the membership bound must match it.
func New(id string, schema *Schema, cols []Column, members Membership) *Table {
	if len(cols) != schema.NumColumns() {
		panic(fmt.Sprintf("table: %d columns for schema of width %d", len(cols), schema.NumColumns()))
	}
	for i, c := range cols {
		if c.Len() != members.Max() {
			panic(fmt.Sprintf("table: column %d has %d rows, membership bound %d", i, c.Len(), members.Max()))
		}
	}
	return &Table{id: id, schema: schema, cols: cols, members: members}
}

// ID returns the table's stable identifier. The engine keys computation
// caches and deterministic sampling seeds off this identifier, so it must
// be unique per logical dataset partition and stable across reloads.
func (t *Table) ID() string { return t.id }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of visible (member) rows.
func (t *Table) NumRows() int { return t.members.Size() }

// Members returns the membership set.
func (t *Table) Members() Membership { return t.members }

// ColumnAt returns the column at schema position i.
func (t *Table) ColumnAt(i int) Column { return t.cols[i] }

// Column returns the named column.
func (t *Table) Column(name string) (Column, error) {
	i := t.schema.ColumnIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("table %s: no column %q", t.id, name)
	}
	return t.cols[i], nil
}

// MustColumn is Column but panics on a missing name; for tests and
// call sites that already validated the schema.
func (t *Table) MustColumn(name string) Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// WithMembership returns a view of t with the given membership, sharing
// all column storage. The membership's physical bound must match the
// table's. Callers that already built a restricted membership (for
// example to test whether a row range holds any members before creating
// a scan task) use this instead of re-deriving it through Slice.
func (t *Table) WithMembership(id string, m Membership) *Table {
	if m.Max() != t.members.Max() {
		panic(fmt.Sprintf("table: membership bound %d for table of %d physical rows", m.Max(), t.members.Max()))
	}
	return &Table{id: id, schema: t.schema, cols: t.cols, members: m}
}

// Filter returns a new table with id newID containing the member rows
// for which keep returns true. Column storage is shared.
func (t *Table) Filter(newID string, keep func(row int) bool) *Table {
	return &Table{
		id:      newID,
		schema:  t.schema,
		cols:    t.cols,
		members: FilterMembership(t.members, keep),
	}
}

// WithColumn returns a new table with an extra column appended to the
// schema. The column must have the table's physical length.
func (t *Table) WithColumn(newID, name string, col Column) (*Table, error) {
	if t.schema.ColumnIndex(name) >= 0 {
		return nil, fmt.Errorf("table %s: column %q already exists", t.id, name)
	}
	if col.Len() != t.members.Max() {
		return nil, fmt.Errorf("table %s: new column has %d rows, want %d", t.id, col.Len(), t.members.Max())
	}
	cols := make([]Column, len(t.cols)+1)
	copy(cols, t.cols)
	cols[len(t.cols)] = col
	return &Table{
		id:      newID,
		schema:  t.schema.Append(ColumnDesc{Name: name, Kind: col.Kind()}),
		cols:    cols,
		members: t.members,
	}, nil
}

// Project returns a new table restricted to the named columns.
func (t *Table) Project(newID string, names []string) (*Table, error) {
	schema, err := t.schema.Project(names)
	if err != nil {
		return nil, err
	}
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = t.cols[t.schema.ColumnIndex(n)]
	}
	return &Table{id: newID, schema: schema, cols: cols, members: t.members}, nil
}

// GetRow materializes physical row i across all columns.
func (t *Table) GetRow(i int) Row {
	row := make(Row, len(t.cols))
	for c, col := range t.cols {
		row[c] = col.Value(i)
	}
	return row
}

// GetRowCols materializes physical row i for the given column positions.
func (t *Table) GetRowCols(i int, cols []int) Row {
	row := make(Row, len(cols))
	for k, c := range cols {
		row[k] = t.cols[c].Value(i)
	}
	return row
}

// Rows materializes every member row, for tests and small exports. It is
// O(rows × columns); production code paths use sketches instead.
func (t *Table) Rows() []Row {
	out := make([]Row, 0, t.NumRows())
	t.members.Iterate(func(i int) bool {
		out = append(out, t.GetRow(i))
		return true
	})
	return out
}
