package table

import (
	"fmt"
	"strings"
)

// ColumnSortOrder is one component of a multi-column sort: a column name
// and a direction.
type ColumnSortOrder struct {
	Column    string
	Ascending bool
}

// RecordOrder is a lexicographic multi-column sort order (paper §3.3:
// "Sort by a set of columns"). The zero-length order compares all rows
// equal.
type RecordOrder []ColumnSortOrder

// Asc builds a single-column ascending order.
func Asc(col string) RecordOrder { return RecordOrder{{Column: col, Ascending: true}} }

// Desc builds a single-column descending order.
func Desc(col string) RecordOrder { return RecordOrder{{Column: col, Ascending: false}} }

// Then appends another sort component.
func (o RecordOrder) Then(col string, ascending bool) RecordOrder {
	return append(append(RecordOrder{}, o...), ColumnSortOrder{Column: col, Ascending: ascending})
}

// Reversed returns the order with every direction flipped; paging
// backwards through a view is paging forwards through the reversed order.
func (o RecordOrder) Reversed() RecordOrder {
	out := make(RecordOrder, len(o))
	for i, c := range o {
		out[i] = ColumnSortOrder{Column: c.Column, Ascending: !c.Ascending}
	}
	return out
}

// Columns returns the column names in order.
func (o RecordOrder) Columns() []string {
	out := make([]string, len(o))
	for i, c := range o {
		out[i] = c.Column
	}
	return out
}

// String renders the order as "+col,-col".
func (o RecordOrder) String() string {
	parts := make([]string, len(o))
	for i, c := range o {
		sign := "+"
		if !c.Ascending {
			sign = "-"
		}
		parts[i] = sign + c.Column
	}
	return strings.Join(parts, ",")
}

// Comparator resolves the order against a table and returns a function
// comparing two physical rows. Missing values sort first within each
// component (before reversal for descending components).
func (o RecordOrder) Comparator(t *Table) (func(i, j int) int, error) {
	cols := make([]Column, len(o))
	for k, c := range o {
		col, err := t.Column(c.Column)
		if err != nil {
			return nil, fmt.Errorf("sort order: %w", err)
		}
		cols[k] = col
	}
	asc := make([]bool, len(o))
	for k, c := range o {
		asc[k] = c.Ascending
	}
	return func(i, j int) int {
		for k, col := range cols {
			cmp := col.Compare(i, j)
			if cmp != 0 {
				if !asc[k] {
					return -cmp
				}
				return cmp
			}
		}
		return 0
	}, nil
}

// RowComparator returns a comparator over materialized Rows laid out as
// [sort columns..., extra columns...], comparing only the first len(o)
// positions. Next-K summaries materialize rows in exactly this layout so
// merging at aggregation nodes needs no schema access.
func (o RecordOrder) RowComparator() func(a, b Row) int {
	n := len(o)
	asc := make([]bool, n)
	for k, c := range o {
		asc[k] = c.Ascending
	}
	return func(a, b Row) int {
		for k := 0; k < n; k++ {
			cmp := a[k].Compare(b[k])
			if cmp != 0 {
				if !asc[k] {
					return -cmp
				}
				return cmp
			}
		}
		return 0
	}
}
