package table

import (
	"fmt"
	"sort"
)

// ColumnBuilder accumulates values for one column and freezes them into
// an immutable Column. Builders are single-goroutine; each loader shard
// uses its own.
type ColumnBuilder interface {
	// Append adds one value. The value kind must match the builder kind.
	Append(v Value)
	// AppendMissing adds one missing value.
	AppendMissing()
	// Len returns the number of values appended so far.
	Len() int
	// Freeze returns the immutable column. The builder must not be used
	// afterwards.
	Freeze() Column
}

// NewColumnBuilder returns a builder for the given kind with capacity
// hint n.
func NewColumnBuilder(kind Kind, n int) ColumnBuilder {
	switch kind {
	case KindInt, KindDate:
		return &intBuilder{kind: kind, vals: make([]int64, 0, n)}
	case KindDouble:
		return &doubleBuilder{vals: make([]float64, 0, n)}
	case KindString:
		return newStringBuilder(n)
	default:
		panic(fmt.Sprintf("table: no builder for kind %v", kind))
	}
}

type missingTracker struct {
	rows []int // indexes of missing rows, in append order
}

func (m *missingTracker) add(i int) { m.rows = append(m.rows, i) }

func (m *missingTracker) freeze(n int) *Bitset {
	if len(m.rows) == 0 {
		return nil
	}
	b := NewBitset(n)
	for _, i := range m.rows {
		b.Set(i)
	}
	return b
}

type intBuilder struct {
	kind Kind
	vals []int64
	miss missingTracker
}

func (b *intBuilder) Append(v Value) {
	if v.Missing {
		b.AppendMissing()
		return
	}
	b.vals = append(b.vals, v.I)
}

func (b *intBuilder) AppendMissing() {
	b.miss.add(len(b.vals))
	b.vals = append(b.vals, 0)
}

func (b *intBuilder) Len() int { return len(b.vals) }

func (b *intBuilder) Freeze() Column {
	return NewIntColumn(b.kind, b.vals, b.miss.freeze(len(b.vals)))
}

type doubleBuilder struct {
	vals []float64
	miss missingTracker
}

func (b *doubleBuilder) Append(v Value) {
	if v.Missing {
		b.AppendMissing()
		return
	}
	b.vals = append(b.vals, v.D)
}

func (b *doubleBuilder) AppendMissing() {
	b.miss.add(len(b.vals))
	b.vals = append(b.vals, 0)
}

func (b *doubleBuilder) Len() int { return len(b.vals) }

func (b *doubleBuilder) Freeze() Column {
	return NewDoubleColumn(b.vals, b.miss.freeze(len(b.vals)))
}

type stringBuilder struct {
	index map[string]int32 // value -> provisional code
	dict  []string         // provisional dictionary, insertion order
	codes []int32
	miss  missingTracker
}

func newStringBuilder(n int) *stringBuilder {
	return &stringBuilder{
		index: make(map[string]int32),
		codes: make([]int32, 0, n),
	}
}

func (b *stringBuilder) Append(v Value) {
	if v.Missing {
		b.AppendMissing()
		return
	}
	code, ok := b.index[v.S]
	if !ok {
		code = int32(len(b.dict))
		b.index[v.S] = code
		b.dict = append(b.dict, v.S)
	}
	b.codes = append(b.codes, code)
}

func (b *stringBuilder) AppendMissing() {
	b.miss.add(len(b.codes))
	b.codes = append(b.codes, 0)
}

func (b *stringBuilder) Len() int { return len(b.codes) }

// Freeze sorts the dictionary and remaps codes so that code order equals
// lexicographic order, making Compare an integer subtraction. An
// all-missing column has an empty dictionary; its placeholder codes stay
// zero and are shadowed by the missing mask.
func (b *stringBuilder) Freeze() Column {
	sorted := make([]string, len(b.dict))
	copy(sorted, b.dict)
	sort.Strings(sorted)
	if len(sorted) > 0 {
		remap := make([]int32, len(b.dict))
		for newCode, s := range sorted {
			remap[b.index[s]] = int32(newCode)
		}
		for i, c := range b.codes {
			b.codes[i] = remap[c]
		}
	}
	missing := b.miss.freeze(len(b.codes))
	return &StringColumn{dict: sorted, codes: b.codes, missing: missing, hasMissing: hasAnyMissing(missing)}
}

// Builder accumulates whole rows and freezes them into a Table.
type Builder struct {
	schema   *Schema
	builders []ColumnBuilder
	rows     int
}

// NewBuilder returns a table builder for the schema with row-capacity
// hint n.
func NewBuilder(schema *Schema, n int) *Builder {
	bs := make([]ColumnBuilder, schema.NumColumns())
	for i, cd := range schema.Columns {
		bs[i] = NewColumnBuilder(cd.Kind, n)
	}
	return &Builder{schema: schema, builders: bs}
}

// AppendRow adds one row; len(row) must equal the schema width.
func (b *Builder) AppendRow(row Row) {
	if len(row) != len(b.builders) {
		panic(fmt.Sprintf("table: row width %d != schema width %d", len(row), len(b.builders)))
	}
	for i, v := range row {
		b.builders[i].Append(v)
	}
	b.rows++
}

// Append adds one value to column i; callers using Append directly must
// keep all columns the same length before Freeze.
func (b *Builder) Append(i int, v Value) { b.builders[i].Append(v) }

// Len returns the number of complete rows appended.
func (b *Builder) Len() int { return b.rows }

// Freeze returns the immutable table with full membership and the given
// identifier. The builder must not be used afterwards.
func (b *Builder) Freeze(id string) *Table {
	cols := make([]Column, len(b.builders))
	n := -1
	for i, cb := range b.builders {
		cols[i] = cb.Freeze()
		if n == -1 {
			n = cols[i].Len()
		} else if cols[i].Len() != n {
			panic("table: ragged columns at Freeze")
		}
	}
	if n < 0 {
		n = 0
	}
	return New(id, b.schema, cols, FullMembership(n))
}
