package table

// RangeMembership contains the contiguous physical rows [Lo, Hi) of a
// table whose columns span [0, Bound). It is how the storage layer
// splits one loaded file into micropartitions without copying column
// data (paper §5.3: partitions are "divided into micropartitions of
// 10-20M rows, each micropartition assigned to a leaf").
type RangeMembership struct {
	Lo, Hi, Bound int
}

// NewRangeMembership builds the membership for rows [lo, hi) of a
// bound-row table.
func NewRangeMembership(lo, hi, bound int) RangeMembership {
	if lo < 0 || hi < lo || hi > bound {
		panic("table: invalid range membership")
	}
	return RangeMembership{Lo: lo, Hi: hi, Bound: bound}
}

// Size implements Membership.
func (m RangeMembership) Size() int { return m.Hi - m.Lo }

// Max implements Membership.
func (m RangeMembership) Max() int { return m.Bound }

// Contains implements Membership.
func (m RangeMembership) Contains(i int) bool { return i >= m.Lo && i < m.Hi }

// Iterate implements Membership.
func (m RangeMembership) Iterate(yield func(i int) bool) {
	for i := m.Lo; i < m.Hi; i++ {
		if !yield(i) {
			return
		}
	}
}

// IterateSpans implements Membership: the range is one span.
func (m RangeMembership) IterateSpans(yield func(start, end int) bool) {
	if m.Lo < m.Hi {
		yield(m.Lo, m.Hi)
	}
}

// FillBatch implements Membership with an arithmetic sequence.
func (m RangeMembership) FillBatch(buf []int32, from int) (int, int) {
	return fillSequential(buf, from, m.Lo, m.Hi)
}

// Sample implements Membership with geometric skips over the range.
func (m RangeMembership) Sample(rate float64, seed uint64, yield func(i int) bool) {
	g := newGeomSkipper(rate, seed)
	for i := m.Lo + g.next(); i < m.Hi; i += g.next() + 1 {
		if !yield(i) {
			return
		}
	}
}

// SliceRows returns a view of t restricted to physical rows [lo, hi)
// with the given ID, sharing all column storage. It requires t to have
// full membership (a freshly loaded table).
func SliceRows(t *Table, id string, lo, hi int) *Table {
	if _, ok := t.Members().(fullMembership); !ok {
		panic("table: SliceRows requires full membership")
	}
	return New(id, t.Schema(), t.cols, NewRangeMembership(lo, hi, t.Members().Max()))
}

// Slice returns a view of t restricted to the member rows within the
// physical range [lo, hi), with the given ID. Unlike SliceRows it works
// over any membership representation (see Restrict); all column storage
// is shared.
func (t *Table) Slice(id string, lo, hi int) *Table {
	return t.WithMembership(id, Restrict(t.members, lo, hi))
}
