package table

import (
	"testing"
	"time"
)

func buildTestTable(t *testing.T) *Table {
	t.Helper()
	schema := NewSchema(
		ColumnDesc{Name: "id", Kind: KindInt},
		ColumnDesc{Name: "price", Kind: KindDouble},
		ColumnDesc{Name: "city", Kind: KindString},
		ColumnDesc{Name: "when", Kind: KindDate},
	)
	b := NewBuilder(schema, 8)
	base := time.Date(2019, 7, 10, 0, 0, 0, 0, time.UTC)
	cities := []string{"oslo", "lima", "oslo", "kyiv", "lima", "oslo"}
	for i := 0; i < 6; i++ {
		row := Row{
			IntValue(int64(i)),
			DoubleValue(float64(i) * 1.5),
			StringValue(cities[i]),
			DateValue(base.Add(time.Duration(i) * time.Hour)),
		}
		if i == 3 {
			row[1] = MissingValue(KindDouble)
		}
		b.AppendRow(row)
	}
	return b.Freeze("test")
}

func TestBuilderFreeze(t *testing.T) {
	tbl := buildTestTable(t)
	if got := tbl.NumRows(); got != 6 {
		t.Fatalf("NumRows = %d, want 6", got)
	}
	if got := tbl.Schema().NumColumns(); got != 4 {
		t.Fatalf("NumColumns = %d, want 4", got)
	}
	price := tbl.MustColumn("price")
	if !price.Missing(3) {
		t.Error("price[3] should be missing")
	}
	if price.Missing(2) {
		t.Error("price[2] should be present")
	}
	if got := price.Double(2); got != 3.0 {
		t.Errorf("price[2] = %v, want 3.0", got)
	}
	id := tbl.MustColumn("id")
	if got := id.Int(5); got != 5 {
		t.Errorf("id[5] = %d, want 5", got)
	}
}

func TestStringColumnDictionarySorted(t *testing.T) {
	tbl := buildTestTable(t)
	city := tbl.MustColumn("city").(*StringColumn)
	dict := city.Dict()
	want := []string{"kyiv", "lima", "oslo"}
	if len(dict) != len(want) {
		t.Fatalf("dict = %v, want %v", dict, want)
	}
	for i := range want {
		if dict[i] != want[i] {
			t.Fatalf("dict = %v, want %v", dict, want)
		}
	}
	// Code comparison must equal string comparison.
	if city.Compare(0, 3) <= 0 { // oslo vs kyiv
		t.Error("oslo should compare greater than kyiv")
	}
	if city.Str(1) != "lima" {
		t.Errorf("city[1] = %q, want lima", city.Str(1))
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{DoubleValue(3.5), DoubleValue(1.5), 1},
		{StringValue("a"), StringValue("b"), -1},
		{MissingValue(KindInt), IntValue(-100), -1},
		{IntValue(0), MissingValue(KindInt), 1},
		{MissingValue(KindInt), MissingValue(KindInt), 0},
		{IntValue(2), DoubleValue(2.5), -1}, // cross-kind numeric
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFilterSharesStorage(t *testing.T) {
	tbl := buildTestTable(t)
	city := tbl.MustColumn("city")
	filtered := tbl.Filter("f1", func(row int) bool { return city.Str(row) == "oslo" })
	if got := filtered.NumRows(); got != 3 {
		t.Fatalf("filtered rows = %d, want 3", got)
	}
	// Same column objects (shared storage).
	if filtered.MustColumn("city") != city {
		t.Error("filter should share column storage")
	}
	// Rows visible through membership are the oslo ones.
	filtered.Members().Iterate(func(i int) bool {
		if city.Str(i) != "oslo" {
			t.Errorf("row %d leaked through filter", i)
		}
		return true
	})
}

func TestProjectAndWithColumn(t *testing.T) {
	tbl := buildTestTable(t)
	proj, err := tbl.Project("p1", []string{"city", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Schema().Columns[0].Name != "city" || proj.Schema().Columns[1].Name != "id" {
		t.Fatalf("projection order wrong: %v", proj.Schema())
	}
	if _, err := tbl.Project("p2", []string{"nope"}); err == nil {
		t.Error("projecting a missing column should fail")
	}

	id := tbl.MustColumn("id")
	doubled := NewComputedColumn(KindInt, id.Len(), func(i int) Value {
		return IntValue(id.Int(i) * 2)
	})
	t2, err := tbl.WithColumn("t2", "id2", doubled)
	if err != nil {
		t.Fatal(err)
	}
	if got := t2.MustColumn("id2").Int(4); got != 8 {
		t.Errorf("id2[4] = %d, want 8", got)
	}
	if _, err := tbl.WithColumn("t3", "id", doubled); err == nil {
		t.Error("duplicate column name should fail")
	}
}

func TestGetRow(t *testing.T) {
	tbl := buildTestTable(t)
	row := tbl.GetRow(3)
	if !row[1].Missing {
		t.Error("row[1] should be missing for physical row 3")
	}
	if row[0].I != 3 {
		t.Errorf("row[0] = %v, want 3", row[0])
	}
	if row[2].S != "kyiv" {
		t.Errorf("row[2] = %v, want kyiv", row[2])
	}
}

func TestRecordOrderComparator(t *testing.T) {
	tbl := buildTestTable(t)
	order := Asc("city").Then("id", false)
	cmp, err := order.Comparator(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Row 3 (kyiv) before row 1 (lima).
	if cmp(3, 1) >= 0 {
		t.Error("kyiv should sort before lima")
	}
	// Rows 0 and 2 are both oslo; descending id puts 2 first.
	if cmp(2, 0) >= 0 {
		t.Error("within oslo, higher id should come first (descending)")
	}
	if _, err := Asc("nope").Comparator(tbl); err == nil {
		t.Error("unknown sort column should fail")
	}
}

func TestRecordOrderReversed(t *testing.T) {
	o := Asc("a").Then("b", false)
	r := o.Reversed()
	if r[0].Ascending || !r[1].Ascending {
		t.Errorf("Reversed() = %v", r)
	}
	if o.String() != "+a,-b" || r.String() != "-a,+b" {
		t.Errorf("String() = %q / %q", o.String(), r.String())
	}
}

func TestRowComparatorMissingFirst(t *testing.T) {
	order := Asc("x")
	cmp := order.RowComparator()
	a := Row{MissingValue(KindInt)}
	b := Row{IntValue(-5)}
	if cmp(a, b) >= 0 {
		t.Error("missing should sort before present ascending")
	}
	desc := Desc("x").RowComparator()
	if desc(a, b) <= 0 {
		t.Error("missing should sort after present descending")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(ColumnDesc{Name: "a", Kind: KindInt}, ColumnDesc{Name: "b", Kind: KindString})
	if s.ColumnIndex("b") != 1 || s.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	s2 := s.Append(ColumnDesc{Name: "c", Kind: KindDouble})
	if s.NumColumns() != 2 || s2.NumColumns() != 3 {
		t.Error("Append should not mutate the receiver")
	}
	if !s.Equal(s) || s.Equal(s2) {
		t.Error("Equal wrong")
	}
	if s.String() != "a:int, b:string" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindNone, KindInt, KindDouble, KindString, KindDate} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind should reject unknown names")
	}
	if !KindDate.Numeric() || KindString.Numeric() {
		t.Error("Numeric() wrong")
	}
}
