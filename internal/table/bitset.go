package table

import "math/bits"

// Bitset is a fixed-capacity bit vector used for missing-value masks and
// dense membership sets. The zero value is an empty bitset; Grow before
// setting bits beyond the current capacity.
type Bitset struct {
	Words []uint64
	N     int // logical length in bits
}

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) *Bitset {
	return &Bitset{Words: make([]uint64, (n+63)/64), N: n}
}

// Len returns the logical length in bits.
func (b *Bitset) Len() int { return b.N }

// Get reports whether bit i is set. Out-of-range bits read as clear.
func (b *Bitset) Get(i int) bool {
	if b == nil || i < 0 || i >= b.N {
		return false
	}
	return b.Words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i. It panics if i is out of range.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.N {
		panic("table: bitset index out of range")
	}
	b.Words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i. It panics if i is out of range.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.N {
		panic("table: bitset index out of range")
	}
	b.Words[i>>6] &^= 1 << (uint(i) & 63)
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Iterate calls yield for each set bit in increasing order until yield
// returns false.
func (b *Bitset) Iterate(yield func(i int) bool) {
	if b == nil {
		return
	}
	for wi, w := range b.Words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !yield(base + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// NextClear returns the index of the first clear bit at or after i, or
// Len() if every bit from i on is set. Out-of-range i returns Len().
func (b *Bitset) NextClear(i int) int {
	if b == nil {
		return 0
	}
	if i >= b.N {
		return b.N
	}
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	w := ^b.Words[wi] >> (uint(i) & 63)
	if w != 0 {
		j := i + bits.TrailingZeros64(w)
		if j > b.N {
			j = b.N
		}
		return j
	}
	for wi++; wi < len(b.Words); wi++ {
		if b.Words[wi] != ^uint64(0) {
			j := wi<<6 + bits.TrailingZeros64(^b.Words[wi])
			if j > b.N {
				j = b.N
			}
			return j
		}
	}
	return b.N
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitset) CountRange(lo, hi int) int {
	if b == nil {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > b.N {
		hi = b.N
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if loW == hiW {
		return bits.OnesCount64(b.Words[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(b.Words[loW]&loMask) + bits.OnesCount64(b.Words[hiW]&hiMask)
	for wi := loW + 1; wi < hiW; wi++ {
		n += bits.OnesCount64(b.Words[wi])
	}
	return n
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// none exists.
func (b *Bitset) NextSet(i int) int {
	if b == nil || i >= b.N {
		return -1
	}
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	w := b.Words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.Words); wi++ {
		if b.Words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(b.Words[wi])
		}
	}
	return -1
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	if b == nil {
		return nil
	}
	w := make([]uint64, len(b.Words))
	copy(w, b.Words)
	return &Bitset{Words: w, N: b.N}
}
