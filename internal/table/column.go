package table

import "fmt"

// Column is an immutable typed vector with optional missing values.
//
// Accessors are partial: Int is valid for KindInt/KindDate columns,
// Double for any numeric kind, Str for every kind (display form), and
// Value for every kind. Calling an accessor on an unsupported kind
// panics — sketches select accessors by Kind up front, so a panic here
// is always a programming error, not a data error.
//
// The concrete column types additionally expose their backing storage
// (IntColumn.Ints, DoubleColumn.Doubles, StringColumn.Codes) together
// with MissingMask/HasMissing, so that sketch kernels can run typed bulk
// loops with no per-row interface dispatch. Returned slices and bitsets
// are the live storage and must not be modified.
type Column interface {
	// Kind returns the column's value kind.
	Kind() Kind
	// Len returns the number of physical rows (membership sets restrict
	// which of them are visible).
	Len() int
	// Missing reports whether row i holds a missing value.
	Missing(i int) bool
	// Int returns row i as int64 (KindInt, KindDate).
	Int(i int) int64
	// Double returns row i as float64 (any numeric kind).
	Double(i int) float64
	// Str returns the display form of row i.
	Str(i int) string
	// Value returns row i as a self-describing Value.
	Value(i int) Value
	// Compare orders rows i and j; missing sorts first.
	Compare(i, j int) int
}

// hasAnyMissing reports whether the mask marks at least one row missing;
// columns cache it so hot accessors skip the nil-receiver Get call.
func hasAnyMissing(missing *Bitset) bool {
	return missing != nil && missing.Count() > 0
}

// IntColumn stores int64 data; it backs both KindInt and KindDate.
type IntColumn struct {
	kind       Kind
	vals       []int64
	missing    *Bitset // nil when the column has no missing values
	hasMissing bool
}

// NewIntColumn wraps vals as a column of the given kind (KindInt or
// KindDate). missing may be nil.
func NewIntColumn(kind Kind, vals []int64, missing *Bitset) *IntColumn {
	if kind != KindInt && kind != KindDate {
		panic(fmt.Sprintf("table: NewIntColumn with kind %v", kind))
	}
	return &IntColumn{kind: kind, vals: vals, missing: missing, hasMissing: hasAnyMissing(missing)}
}

// Kind implements Column.
func (c *IntColumn) Kind() Kind { return c.kind }

// Len implements Column.
func (c *IntColumn) Len() int { return len(c.vals) }

// Missing implements Column.
func (c *IntColumn) Missing(i int) bool { return c.hasMissing && c.missing.Get(i) }

// Int implements Column.
func (c *IntColumn) Int(i int) int64 { return c.vals[i] }

// Double implements Column.
func (c *IntColumn) Double(i int) float64 { return float64(c.vals[i]) }

// Str implements Column.
func (c *IntColumn) Str(i int) string { return c.Value(i).String() }

// Value implements Column.
func (c *IntColumn) Value(i int) Value {
	if c.hasMissing && c.missing.Get(i) {
		return MissingValue(c.kind)
	}
	return Value{Kind: c.kind, I: c.vals[i]}
}

// Compare implements Column.
func (c *IntColumn) Compare(i, j int) int {
	mi, mj := c.Missing(i), c.Missing(j)
	if mi || mj {
		return cmpMissing(mi, mj)
	}
	return cmpInt(c.vals[i], c.vals[j])
}

// Ints returns the backing value slice (missing rows hold zero). Callers
// must not modify it.
func (c *IntColumn) Ints() []int64 { return c.vals }

// MissingMask returns the missing bitset, nil when no row is missing.
func (c *IntColumn) MissingMask() *Bitset {
	if !c.hasMissing {
		return nil
	}
	return c.missing
}

// HasMissing reports whether any row is missing.
func (c *IntColumn) HasMissing() bool { return c.hasMissing }

// DoubleColumn stores float64 data (KindDouble).
type DoubleColumn struct {
	vals       []float64
	missing    *Bitset
	hasMissing bool
}

// NewDoubleColumn wraps vals as a KindDouble column. missing may be nil.
func NewDoubleColumn(vals []float64, missing *Bitset) *DoubleColumn {
	return &DoubleColumn{vals: vals, missing: missing, hasMissing: hasAnyMissing(missing)}
}

// Kind implements Column.
func (c *DoubleColumn) Kind() Kind { return KindDouble }

// Len implements Column.
func (c *DoubleColumn) Len() int { return len(c.vals) }

// Missing implements Column.
func (c *DoubleColumn) Missing(i int) bool { return c.hasMissing && c.missing.Get(i) }

// Int implements Column; doubles do not support Int access.
func (c *DoubleColumn) Int(i int) int64 { panic("table: Int on double column") }

// Double implements Column.
func (c *DoubleColumn) Double(i int) float64 { return c.vals[i] }

// Str implements Column.
func (c *DoubleColumn) Str(i int) string { return c.Value(i).String() }

// Value implements Column.
func (c *DoubleColumn) Value(i int) Value {
	if c.hasMissing && c.missing.Get(i) {
		return MissingValue(KindDouble)
	}
	return Value{Kind: KindDouble, D: c.vals[i]}
}

// Compare implements Column.
func (c *DoubleColumn) Compare(i, j int) int {
	mi, mj := c.Missing(i), c.Missing(j)
	if mi || mj {
		return cmpMissing(mi, mj)
	}
	return cmpFloat(c.vals[i], c.vals[j])
}

// Doubles returns the backing value slice (missing rows hold zero).
// Callers must not modify it.
func (c *DoubleColumn) Doubles() []float64 { return c.vals }

// MissingMask returns the missing bitset, nil when no row is missing.
func (c *DoubleColumn) MissingMask() *Bitset {
	if !c.hasMissing {
		return nil
	}
	return c.missing
}

// HasMissing reports whether any row is missing.
func (c *DoubleColumn) HasMissing() bool { return c.hasMissing }

// StringColumn stores dictionary-encoded strings (paper §6: "String
// columns use dictionary encoding for compression"). The dictionary is
// sorted, so code order equals lexicographic order and Compare is an
// integer comparison.
type StringColumn struct {
	dict       []string // sorted, unique
	codes      []int32  // index into dict; value for missing rows is 0
	missing    *Bitset
	hasMissing bool
}

// NewDictColumn wraps an already dictionary-encoded string column: dict
// must be sorted ascending and unique, and codes index into it (missing
// rows hold code 0, shadowed by the mask). The column-store layer uses
// it to reconstruct string columns from a stored dictionary section
// without re-encoding; because dict and codes come from external data,
// the sort invariant is validated here and a violation is an error, not
// a panic. Callers are responsible for validating that every
// non-missing code is within range. The slices are adopted, not copied,
// so codes may alias memory-mapped storage.
func NewDictColumn(dict []string, codes []int32, missing *Bitset) (*StringColumn, error) {
	for i := 1; i < len(dict); i++ {
		if dict[i-1] >= dict[i] {
			return nil, fmt.Errorf("table: dictionary not sorted/unique at %d: %q >= %q", i, dict[i-1], dict[i])
		}
	}
	return &StringColumn{dict: dict, codes: codes, missing: missing, hasMissing: hasAnyMissing(missing)}, nil
}

// NewStringColumn builds a string column from raw values. Prefer the
// Builder for bulk loading; this constructor is for tests and small data.
func NewStringColumn(vals []string, missing *Bitset) *StringColumn {
	b := newStringBuilder(len(vals))
	for i, v := range vals {
		if missing.Get(i) {
			b.AppendMissing()
		} else {
			b.Append(StringValue(v))
		}
	}
	return b.Freeze().(*StringColumn)
}

// Kind implements Column.
func (c *StringColumn) Kind() Kind { return KindString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.codes) }

// Missing implements Column.
func (c *StringColumn) Missing(i int) bool { return c.hasMissing && c.missing.Get(i) }

// Int implements Column; strings do not support Int access.
func (c *StringColumn) Int(i int) int64 { panic("table: Int on string column") }

// Double implements Column; strings do not support Double access.
func (c *StringColumn) Double(i int) float64 { panic("table: Double on string column") }

// Str implements Column.
func (c *StringColumn) Str(i int) string {
	if c.hasMissing && c.missing.Get(i) {
		return ""
	}
	return c.dict[c.codes[i]]
}

// Value implements Column.
func (c *StringColumn) Value(i int) Value {
	if c.hasMissing && c.missing.Get(i) {
		return MissingValue(KindString)
	}
	return Value{Kind: KindString, S: c.dict[c.codes[i]]}
}

// Compare implements Column. Because the dictionary is sorted, code
// comparison is string comparison.
func (c *StringColumn) Compare(i, j int) int {
	mi, mj := c.Missing(i), c.Missing(j)
	if mi || mj {
		return cmpMissing(mi, mj)
	}
	return int(c.codes[i]) - int(c.codes[j])
}

// Code returns the dictionary code of row i (valid for non-missing rows).
func (c *StringColumn) Code(i int) int32 { return c.codes[i] }

// Codes returns the backing code slice (missing rows hold code 0).
// Callers must not modify it.
func (c *StringColumn) Codes() []int32 { return c.codes }

// MissingMask returns the missing bitset, nil when no row is missing.
func (c *StringColumn) MissingMask() *Bitset {
	if !c.hasMissing {
		return nil
	}
	return c.missing
}

// HasMissing reports whether any row is missing.
func (c *StringColumn) HasMissing() bool { return c.hasMissing }

// Dict returns the sorted dictionary. Callers must not modify it.
func (c *StringColumn) Dict() []string { return c.dict }

// DictSize returns the number of distinct non-missing values.
func (c *StringColumn) DictSize() int { return len(c.dict) }

func cmpMissing(mi, mj bool) int {
	switch {
	case mi && mj:
		return 0
	case mi:
		return -1
	default:
		return 1
	}
}

// ComputedColumn adapts a per-row function into a Column. It backs
// user-defined map columns (paper §5.6): values are computed on access
// and never stored, so dropping the table costs nothing and recomputation
// is the recovery path.
type ComputedColumn struct {
	kind Kind
	n    int
	fn   func(i int) Value
}

// NewComputedColumn returns a column of n rows whose value at row i is
// fn(i). fn must be pure and deterministic (fault-tolerance requires
// recomputation to yield identical values).
func NewComputedColumn(kind Kind, n int, fn func(i int) Value) *ComputedColumn {
	return &ComputedColumn{kind: kind, n: n, fn: fn}
}

// Kind implements Column.
func (c *ComputedColumn) Kind() Kind { return c.kind }

// Len implements Column.
func (c *ComputedColumn) Len() int { return c.n }

// Missing implements Column.
func (c *ComputedColumn) Missing(i int) bool { return c.fn(i).Missing }

// Int implements Column.
func (c *ComputedColumn) Int(i int) int64 { return c.fn(i).I }

// Double implements Column.
func (c *ComputedColumn) Double(i int) float64 { return c.fn(i).Double() }

// Str implements Column.
func (c *ComputedColumn) Str(i int) string { return c.fn(i).String() }

// Value implements Column.
func (c *ComputedColumn) Value(i int) Value { return c.fn(i) }

// Compare implements Column.
func (c *ComputedColumn) Compare(i, j int) int { return c.fn(i).Compare(c.fn(j)) }
