// Package table implements Hillview's in-memory columnar table substrate:
// typed columns with missing-value support, dictionary-encoded strings,
// membership sets for zero-copy filtering, uniform row sampling, and
// multi-column sort orders.
//
// Tables are immutable once frozen; derived tables (filters, projections,
// appended computed columns) share column storage with their parents. This
// is the property that lets the engine treat all in-memory state as
// disposable soft state (paper §5.6–5.7).
//
// # Batch iteration
//
// Scans are vectorized: in addition to row-at-a-time Iterate, every
// Membership implements IterateSpans (maximal runs of consecutive member
// rows) and FillBatch (bulk row-index decoding into a reused buffer), and
// the stored column types expose their backing slices (IntColumn.Ints,
// DoubleColumn.Doubles, StringColumn.Codes) plus MissingMask/HasMissing.
// Sketch kernels combine the two to scan columns with no per-row
// interface dispatch. The contract: batch forms visit exactly the rows
// Iterate visits, in the same increasing order, deterministically; see
// the Membership interface comment for the details, and Restrict for
// how the engine shards one membership into independent row-range
// chunks without copying.
package table

import "fmt"

// Kind enumerates the value types Hillview supports (paper §3.5):
// integers, floating-point numbers, dates, and strings (free-form text and
// categorical data share one representation; categories are simply strings
// with low dictionary cardinality).
type Kind uint8

const (
	// KindNone marks an absent value kind (e.g., a missing Value).
	KindNone Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindDouble is a 64-bit IEEE float.
	KindDouble
	// KindString is a dictionary-encoded string.
	KindString
	// KindDate is a timestamp in milliseconds since the Unix epoch,
	// stored as int64.
	KindDate
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt:
		return "int"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind can be converted to a
// float64 for bucketing (paper §4.3: "a value that can be readily
// converted to a real number, such as a date").
func (k Kind) Numeric() bool {
	return k == KindInt || k == KindDouble || k == KindDate
}

// ParseKind converts a kind name produced by Kind.String back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "none":
		return KindNone, nil
	case "int":
		return KindInt, nil
	case "double":
		return KindDouble, nil
	case "string":
		return KindString, nil
	case "date":
		return KindDate, nil
	default:
		return KindNone, fmt.Errorf("table: unknown kind %q", s)
	}
}
