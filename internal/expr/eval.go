package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/table"
)

// builtinSpec describes one builtin function: arity bounds, result-kind
// inference, whether it sees missing arguments (default: any missing
// argument makes the result missing), and the evaluator.
type builtinSpec struct {
	minArgs, maxArgs int
	passMissing      bool
	kind             func(args []table.Kind) table.Kind
	eval             func(args []table.Value) table.Value
}

func numKind(args []table.Kind) table.Kind {
	for _, k := range args {
		if k == table.KindDouble {
			return table.KindDouble
		}
	}
	return table.KindInt
}

func fixedKind(k table.Kind) func([]table.Kind) table.Kind {
	return func([]table.Kind) table.Kind { return k }
}

var builtins = map[string]builtinSpec{
	"abs": {1, 1, false, numKind, func(a []table.Value) table.Value {
		if a[0].Kind == table.KindDouble {
			return table.DoubleValue(math.Abs(a[0].D))
		}
		v := a[0].I
		if v < 0 {
			v = -v
		}
		return table.IntValue(v)
	}},
	"floor": {1, 1, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return table.IntValue(int64(math.Floor(a[0].Double())))
	}},
	"ceil": {1, 1, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return table.IntValue(int64(math.Ceil(a[0].Double())))
	}},
	"round": {1, 1, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return table.IntValue(int64(math.Round(a[0].Double())))
	}},
	"sqrt": {1, 1, false, fixedKind(table.KindDouble), func(a []table.Value) table.Value {
		return table.DoubleValue(math.Sqrt(a[0].Double()))
	}},
	"exp": {1, 1, false, fixedKind(table.KindDouble), func(a []table.Value) table.Value {
		return table.DoubleValue(math.Exp(a[0].Double()))
	}},
	"log": {1, 1, false, fixedKind(table.KindDouble), func(a []table.Value) table.Value {
		return table.DoubleValue(math.Log(a[0].Double()))
	}},
	"pow": {2, 2, false, fixedKind(table.KindDouble), func(a []table.Value) table.Value {
		return table.DoubleValue(math.Pow(a[0].Double(), a[1].Double()))
	}},
	"min": {2, 2, false, numKind, func(a []table.Value) table.Value {
		if a[0].Compare(a[1]) <= 0 {
			return a[0]
		}
		return a[1]
	}},
	"max": {2, 2, false, numKind, func(a []table.Value) table.Value {
		if a[0].Compare(a[1]) >= 0 {
			return a[0]
		}
		return a[1]
	}},
	"len": {1, 1, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return table.IntValue(int64(len(a[0].S)))
	}},
	"lower": {1, 1, false, fixedKind(table.KindString), func(a []table.Value) table.Value {
		return table.StringValue(strings.ToLower(a[0].String()))
	}},
	"upper": {1, 1, false, fixedKind(table.KindString), func(a []table.Value) table.Value {
		return table.StringValue(strings.ToUpper(a[0].String()))
	}},
	"trim": {1, 1, false, fixedKind(table.KindString), func(a []table.Value) table.Value {
		return table.StringValue(strings.TrimSpace(a[0].String()))
	}},
	"substr": {3, 3, false, fixedKind(table.KindString), func(a []table.Value) table.Value {
		s := a[0].String()
		start, n := int(a[1].I), int(a[2].I)
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if n < 0 || end > len(s) {
			end = len(s)
		}
		return table.StringValue(s[start:end])
	}},
	"concat": {2, 8, false, fixedKind(table.KindString), func(a []table.Value) table.Value {
		var sb strings.Builder
		for _, v := range a {
			sb.WriteString(v.String())
		}
		return table.StringValue(sb.String())
	}},
	"contains": {2, 2, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return boolValue(strings.Contains(a[0].String(), a[1].String()))
	}},
	"startsWith": {2, 2, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return boolValue(strings.HasPrefix(a[0].String(), a[1].String()))
	}},
	"endsWith": {2, 2, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return boolValue(strings.HasSuffix(a[0].String(), a[1].String()))
	}},
	"year":    dateField(func(t time.Time) int64 { return int64(t.Year()) }),
	"month":   dateField(func(t time.Time) int64 { return int64(t.Month()) }),
	"day":     dateField(func(t time.Time) int64 { return int64(t.Day()) }),
	"hour":    dateField(func(t time.Time) int64 { return int64(t.Hour()) }),
	"minute":  dateField(func(t time.Time) int64 { return int64(t.Minute()) }),
	"weekday": dateField(func(t time.Time) int64 { return int64(t.Weekday()) }),
	"toInt": {1, 1, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		switch a[0].Kind {
		case table.KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(a[0].S), 10, 64)
			if err != nil {
				return table.MissingValue(table.KindInt)
			}
			return table.IntValue(i)
		default:
			return table.IntValue(int64(a[0].Double()))
		}
	}},
	"toDouble": {1, 1, false, fixedKind(table.KindDouble), func(a []table.Value) table.Value {
		switch a[0].Kind {
		case table.KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(a[0].S), 64)
			if err != nil {
				return table.MissingValue(table.KindDouble)
			}
			return table.DoubleValue(f)
		default:
			return table.DoubleValue(a[0].Double())
		}
	}},
	"toString": {1, 1, false, fixedKind(table.KindString), func(a []table.Value) table.Value {
		return table.StringValue(a[0].String())
	}},
	"toDate": {1, 1, false, fixedKind(table.KindDate), func(a []table.Value) table.Value {
		return table.Value{Kind: table.KindDate, I: int64(a[0].Double())}
	}},
	"isMissing": {1, 1, true, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return boolValue(a[0].Missing)
	}},
	"coalesce": {2, 8, true, func(args []table.Kind) table.Kind { return args[0] }, func(a []table.Value) table.Value {
		for _, v := range a {
			if !v.Missing {
				return v
			}
		}
		return a[len(a)-1]
	}},
	"if": {3, 3, true, func(args []table.Kind) table.Kind { return args[1] }, func(a []table.Value) table.Value {
		if truthy(a[0]) {
			return a[1]
		}
		return a[2]
	}},
}

func dateField(f func(time.Time) int64) builtinSpec {
	return builtinSpec{1, 1, false, fixedKind(table.KindInt), func(a []table.Value) table.Value {
		return table.IntValue(f(time.UnixMilli(int64(a[0].Double())).UTC()))
	}}
}

func checkArity(name string, n int) error {
	b := builtins[name]
	if n < b.minArgs || n > b.maxArgs {
		return fmt.Errorf("expr: %s takes %d..%d arguments, got %d", name, b.minArgs, b.maxArgs, n)
	}
	return nil
}

func boolValue(b bool) table.Value {
	if b {
		return table.IntValue(1)
	}
	return table.IntValue(0)
}

// truthy reports whether a value counts as true: non-zero numbers and
// non-empty strings. Missing values are not truthy.
func truthy(v table.Value) bool {
	if v.Missing {
		return false
	}
	switch v.Kind {
	case table.KindString:
		return v.S != ""
	default:
		return v.Double() != 0
	}
}
