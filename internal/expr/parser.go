package expr

import (
	"fmt"
	"strconv"
)

// Parse compiles expression source into an AST. The grammar, loosest to
// tightest binding:
//
//	expr  := or
//	or    := and  ("||" and)*
//	and   := cmp  ("&&" cmp)*
//	cmp   := add  (("=="|"!="|"<"|"<="|">"|">=") add)?
//	add   := mul  (("+"|"-") mul)*
//	mul   := unary (("*"|"/"|"%") unary)*
//	unary := ("-"|"!") unary | primary
//	primary := number | string | ident | ident "(" args ")" | "(" expr ")"
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected %q at %d", p.peek().text, p.peek().pos)
	}
	return n, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptOp(ops ...string) (string, bool) {
	t := p.peek()
	if t.kind != tokOp {
		return "", false
	}
	for _, op := range ops {
		if t.text == op {
			p.next()
			return op, true
		}
	}
	return "", false
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("||"); !ok {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryNode{Op: "||", L: l, R: r}
	}
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("&&"); !ok {
			return l, nil
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryNode{Op: "&&", L: l, R: r}
	}
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	op, ok := p.acceptOp("==", "!=", "<=", ">=", "<", ">")
	if !ok {
		return l, nil
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &BinaryNode{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("+", "-")
		if !ok {
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryNode{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("*", "/", "%")
		if !ok {
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryNode{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Node, error) {
	if op, ok := p.acceptOp("-", "!"); ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryNode{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return &NumberNode{IsInt: true, I: i, F: float64(i), Text: t.text}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at %d", t.text, t.pos)
		}
		return &NumberNode{F: f, Text: t.text}, nil
	case tokString:
		return &StringNode{S: t.text}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.next() // (
			var args []Node
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tokComma {
						p.next()
						continue
					}
					break
				}
			}
			if p.peek().kind != tokRParen {
				return nil, fmt.Errorf("expr: expected ) at %d", p.peek().pos)
			}
			p.next()
			if _, ok := builtins[t.text]; !ok {
				return nil, fmt.Errorf("expr: unknown function %q at %d", t.text, t.pos)
			}
			if err := checkArity(t.text, len(args)); err != nil {
				return nil, err
			}
			return &CallNode{Func: t.text, Args: args}, nil
		}
		return &ColumnNode{Name: t.text}, nil
	case tokLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("expr: expected ) at %d", p.peek().pos)
		}
		p.next()
		return n, nil
	default:
		return nil, fmt.Errorf("expr: unexpected %q at %d", t.text, t.pos)
	}
}
