package expr

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/table"
)

func exprTestTable(t *testing.T) *table.Table {
	t.Helper()
	schema := table.NewSchema(
		table.ColumnDesc{Name: "a", Kind: table.KindInt},
		table.ColumnDesc{Name: "b", Kind: table.KindDouble},
		table.ColumnDesc{Name: "s", Kind: table.KindString},
		table.ColumnDesc{Name: "d", Kind: table.KindDate},
	)
	b := table.NewBuilder(schema, 4)
	when := time.Date(2019, 7, 10, 14, 30, 0, 0, time.UTC)
	b.AppendRow(table.Row{table.IntValue(10), table.DoubleValue(2.5), table.StringValue("SFO"), table.DateValue(when)})
	b.AppendRow(table.Row{table.IntValue(-3), table.DoubleValue(0), table.StringValue("jfk"), table.DateValue(when.AddDate(0, 1, 5))})
	b.AppendRow(table.Row{table.MissingValue(table.KindInt), table.DoubleValue(7), table.StringValue(""), table.DateValue(when)})
	b.AppendRow(table.Row{table.IntValue(100), table.MissingValue(table.KindDouble), table.MissingValue(table.KindString), table.DateValue(when)})
	return b.Freeze("expr-test")
}

// evalAt binds src and evaluates at one row.
func evalAt(t *testing.T, src string, row int) table.Value {
	t.Helper()
	tbl := exprTestTable(t)
	c, err := Bind(src, tbl)
	if err != nil {
		t.Fatalf("Bind(%q): %v", src, err)
	}
	return c.Fn(row)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		row  int
		want table.Value
	}{
		{"a + 5", 0, table.IntValue(15)},
		{"a - 20", 0, table.IntValue(-10)},
		{"a * 2", 1, table.IntValue(-6)},
		{"a + b", 0, table.DoubleValue(12.5)},
		{"a / 4", 0, table.DoubleValue(2.5)}, // division is always double
		{"a % 3", 0, table.IntValue(1)},
		{"-a", 0, table.IntValue(-10)},
		{"2 + 3 * 4", 0, table.IntValue(14)},       // precedence
		{"(2 + 3) * 4", 0, table.IntValue(20)},     // parens
		{"10.5 % 3", 0, table.DoubleValue(1.5)},    // float mod
		{"1e2 + 0.5", 0, table.DoubleValue(100.5)}, // scientific literal
	}
	for _, c := range cases {
		got := evalAt(t, c.src, c.row)
		if got.Missing || got.Compare(c.want) != 0 {
			t.Errorf("%q @ row %d = %v, want %v", c.src, c.row, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		row  int
		want int64
	}{
		{"a > 5", 0, 1},
		{"a > 5", 1, 0},
		{"a == 10", 0, 1},
		{"a != 10", 0, 0},
		{"a <= -3", 1, 1},
		{"s == \"SFO\"", 0, 1},
		{"s < \"a\"", 0, 1}, // uppercase sorts before lowercase
		{"a > 0 && b > 1", 0, 1},
		{"a > 0 && b > 100", 0, 0},
		{"a > 1000 || b > 1", 0, 1},
		{"!(a > 5)", 0, 0},
		{"!0", 0, 1},
	}
	for _, c := range cases {
		got := evalAt(t, c.src, c.row)
		if got.Missing || got.I != c.want {
			t.Errorf("%q @ row %d = %v, want %d", c.src, c.row, got, c.want)
		}
	}
}

func TestMissingPropagation(t *testing.T) {
	// Row 2 has missing a; row 3 missing b and s.
	for _, src := range []string{"a + 1", "a > 5", "-a", "abs(a)", "a + b"} {
		if got := evalAt(t, src, 2); !got.Missing {
			t.Errorf("%q with missing operand = %v, want missing", src, got)
		}
	}
	// Short-circuit still decides when possible.
	if got := evalAt(t, "b > 100 && a > 5", 2); got.Missing || got.I != 0 {
		t.Errorf("short-circuit && = %v, want 0", got)
	}
	if got := evalAt(t, "b > 1 || a > 5", 2); got.Missing || got.I != 1 {
		t.Errorf("short-circuit || = %v, want 1", got)
	}
	// Undecidable when the decider is missing.
	if got := evalAt(t, "a > 5 && b > 1", 2); !got.Missing {
		t.Errorf("missing && = %v, want missing", got)
	}
	// isMissing and coalesce see missing values.
	if got := evalAt(t, "isMissing(a)", 2); got.I != 1 {
		t.Errorf("isMissing = %v", got)
	}
	if got := evalAt(t, "isMissing(a)", 0); got.I != 0 {
		t.Errorf("isMissing = %v", got)
	}
	if got := evalAt(t, "coalesce(a, 42)", 2); got.Missing || got.I != 42 {
		t.Errorf("coalesce = %v", got)
	}
	// Division by zero is missing.
	if got := evalAt(t, "a / b", 1); !got.Missing {
		t.Errorf("division by zero = %v, want missing", got)
	}
}

func TestStringFunctions(t *testing.T) {
	cases := []struct {
		src  string
		row  int
		want string
	}{
		{"lower(s)", 0, "sfo"},
		{"upper(s)", 1, "JFK"},
		{"s + \"-x\"", 0, "SFO-x"},
		{"concat(s, \"/\", s)", 0, "SFO/SFO"},
		{"substr(s, 0, 2)", 0, "SF"},
		{"substr(s, 1, 100)", 0, "FO"},
		{"trim(\"  hi  \")", 0, "hi"},
		{"toString(a)", 0, "10"},
		{"if(a > 5, \"big\", \"small\")", 0, "big"},
		{"if(a > 5, \"big\", \"small\")", 1, "small"},
	}
	for _, c := range cases {
		got := evalAt(t, c.src, c.row)
		if got.Missing || got.S != c.want {
			t.Errorf("%q @ row %d = %v, want %q", c.src, c.row, got, c.want)
		}
	}
	if got := evalAt(t, "len(s)", 0); got.I != 3 {
		t.Errorf("len = %v", got)
	}
	if got := evalAt(t, "contains(s, \"FO\")", 0); got.I != 1 {
		t.Errorf("contains = %v", got)
	}
	if got := evalAt(t, "startsWith(s, \"SF\") && endsWith(s, \"O\")", 0); got.I != 1 {
		t.Errorf("starts/ends = %v", got)
	}
}

func TestDateFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"year(d)", 2019},
		{"month(d)", 7},
		{"day(d)", 10},
		{"hour(d)", 14},
		{"minute(d)", 30},
		{"weekday(d)", int64(time.Wednesday)},
	}
	for _, c := range cases {
		got := evalAt(t, c.src, 0)
		if got.Missing || got.I != c.want {
			t.Errorf("%q = %v, want %d", c.src, got, c.want)
		}
	}
	// Date arithmetic: dates are numeric (millis).
	if got := evalAt(t, "d - d", 0); got.Missing || got.I != 0 {
		t.Errorf("d - d = %v", got)
	}
}

func TestConversions(t *testing.T) {
	if got := evalAt(t, "toInt(\"42\")", 0); got.I != 42 {
		t.Errorf("toInt = %v", got)
	}
	if got := evalAt(t, "toInt(\"4x\")", 0); !got.Missing {
		t.Errorf("toInt of junk = %v, want missing", got)
	}
	if got := evalAt(t, "toDouble(\"2.5\")", 0); got.D != 2.5 {
		t.Errorf("toDouble = %v", got)
	}
	if got := evalAt(t, "toDouble(a)", 0); got.Kind != table.KindDouble || got.D != 10 {
		t.Errorf("toDouble(int) = %v", got)
	}
	if got := evalAt(t, "toDate(0)", 0); got.Kind != table.KindDate || got.I != 0 {
		t.Errorf("toDate = %v", got)
	}
	if got := evalAt(t, "year(toDate(0))", 0); got.I != 1970 {
		t.Errorf("year(epoch) = %v", got)
	}
}

func TestMathFunctions(t *testing.T) {
	if got := evalAt(t, "abs(a)", 1); got.I != 3 {
		t.Errorf("abs = %v", got)
	}
	if got := evalAt(t, "abs(-2.5)", 0); got.D != 2.5 {
		t.Errorf("abs double = %v", got)
	}
	if got := evalAt(t, "floor(b)", 0); got.I != 2 {
		t.Errorf("floor = %v", got)
	}
	if got := evalAt(t, "ceil(b)", 0); got.I != 3 {
		t.Errorf("ceil = %v", got)
	}
	if got := evalAt(t, "round(2.5)", 0); got.I != 3 {
		t.Errorf("round = %v", got)
	}
	if got := evalAt(t, "sqrt(16)", 0); got.D != 4 {
		t.Errorf("sqrt = %v", got)
	}
	if got := evalAt(t, "pow(2, 10)", 0); got.D != 1024 {
		t.Errorf("pow = %v", got)
	}
	if got := evalAt(t, "log(exp(1))", 0); math.Abs(got.D-1) > 1e-12 {
		t.Errorf("log/exp = %v", got)
	}
	if got := evalAt(t, "min(a, 3)", 0); got.I != 3 {
		t.Errorf("min = %v", got)
	}
	if got := evalAt(t, "max(a, b)", 0); got.Double() != 10 {
		t.Errorf("max = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a +",
		"(a",
		"a b",
		"nosuchfn(1)",
		"min(1)",     // arity
		"min(1,2,3)", // arity
		"\"unterminated",
		"'bad\\q'",
		"a @ b",
		"1.2.3 +",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestBindErrors(t *testing.T) {
	tbl := exprTestTable(t)
	bad := []string{
		"nosuchcol + 1",
		"s - 1",      // string arithmetic
		"s * s",      // string multiply
		"a == s",     // cross-kind comparison
		"-s",         // negate string
		"s + 1",      // string + number
		"a && richc", // unknown column inside logic
	}
	for _, src := range bad {
		if _, err := Bind(src, tbl); err == nil {
			t.Errorf("Bind(%q) should fail", src)
		}
	}
}

func TestPredicateAndDerive(t *testing.T) {
	tbl := exprTestTable(t)
	pred, err := Predicate("a > 0", tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0 and 3 have a > 0; row 2 has missing a (excluded).
	want := map[int]bool{0: true, 1: false, 2: false, 3: true}
	for row, w := range want {
		if pred(row) != w {
			t.Errorf("pred(%d) = %t, want %t", row, pred(row), w)
		}
	}
	filtered := tbl.Filter("f", pred)
	if filtered.NumRows() != 2 {
		t.Errorf("filtered rows = %d, want 2", filtered.NumRows())
	}

	col, err := DeriveColumn("a * 2 + 1", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if col.Kind() != table.KindInt || col.Len() != 4 {
		t.Fatalf("derived column kind/len = %v/%d", col.Kind(), col.Len())
	}
	if got := col.Int(0); got != 21 {
		t.Errorf("derived[0] = %d, want 21", got)
	}
	if !col.Missing(2) {
		t.Error("derived[2] should be missing")
	}
	t2, err := tbl.WithColumn("t2", "a2", col)
	if err != nil {
		t.Fatal(err)
	}
	if got := t2.MustColumn("a2").Int(3); got != 201 {
		t.Errorf("via table = %d, want 201", got)
	}
}

func TestASTString(t *testing.T) {
	// String() renders re-parseable source.
	srcs := []string{
		"a + b * 2",
		"if(a > 5, \"big\", lower(s))",
		"!(a == 1) || b < 2.5",
		"-a % 3",
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		n2, err := Parse(n1.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, n1.String(), err)
		}
		if n1.String() != n2.String() {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, n1.String(), n2.String())
		}
	}
}

func TestTruthiness(t *testing.T) {
	tbl := exprTestTable(t)
	// Empty string is falsy; non-empty truthy.
	pred, err := Predicate("s", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(0) || pred(2) || pred(3) {
		t.Error("string truthiness wrong")
	}
	// Zero double is falsy.
	pred2, _ := Predicate("b", tbl)
	if pred2(1) || !pred2(2) {
		t.Error("numeric truthiness wrong")
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := lex(`"a\"b" 'c\n' x_1 <= 1.5e-3`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != `a"b` || toks[1].text != "c\n" {
		t.Errorf("escapes wrong: %q %q", toks[0].text, toks[1].text)
	}
	if toks[2].text != "x_1" || toks[3].text != "<=" || toks[4].text != "1.5e-3" {
		t.Errorf("tokens wrong: %+v", toks)
	}
	if !strings.Contains((&StringNode{S: "x"}).String(), "x") {
		t.Error("StringNode.String broken")
	}
}
