package expr

import (
	"fmt"
	"math"

	"repro/internal/table"
)

// Compiled is an expression bound to a table: a pure per-row function
// plus its inferred result kind. It satisfies the contract of
// table.NewComputedColumn, which is how derived columns are materialized
// lazily and recomputed after cache eviction (paper §5.6).
type Compiled struct {
	Kind table.Kind
	Fn   func(row int) table.Value
}

// Bind parses and compiles src against a table.
func Bind(src string, t *table.Table) (*Compiled, error) {
	node, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return BindNode(node, t)
}

// BindNode compiles an AST against a table, resolving column references
// and checking kinds.
func BindNode(node Node, t *table.Table) (*Compiled, error) {
	switch n := node.(type) {
	case *NumberNode:
		if n.IsInt {
			v := table.IntValue(n.I)
			return &Compiled{Kind: table.KindInt, Fn: func(int) table.Value { return v }}, nil
		}
		v := table.DoubleValue(n.F)
		return &Compiled{Kind: table.KindDouble, Fn: func(int) table.Value { return v }}, nil

	case *StringNode:
		v := table.StringValue(n.S)
		return &Compiled{Kind: table.KindString, Fn: func(int) table.Value { return v }}, nil

	case *ColumnNode:
		col, err := t.Column(n.Name)
		if err != nil {
			return nil, err
		}
		return &Compiled{Kind: col.Kind(), Fn: col.Value}, nil

	case *UnaryNode:
		x, err := BindNode(n.X, t)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "-":
			if !x.Kind.Numeric() {
				return nil, fmt.Errorf("expr: unary - over %v", x.Kind)
			}
			kind := x.Kind
			if kind == table.KindDate {
				kind = table.KindInt
			}
			return &Compiled{Kind: kind, Fn: func(row int) table.Value {
				v := x.Fn(row)
				if v.Missing {
					return table.MissingValue(kind)
				}
				if kind == table.KindDouble {
					return table.DoubleValue(-v.Double())
				}
				return table.IntValue(-v.I)
			}}, nil
		case "!":
			return &Compiled{Kind: table.KindInt, Fn: func(row int) table.Value {
				v := x.Fn(row)
				if v.Missing {
					return table.MissingValue(table.KindInt)
				}
				return boolValue(!truthy(v))
			}}, nil
		default:
			return nil, fmt.Errorf("expr: unknown unary %q", n.Op)
		}

	case *BinaryNode:
		return bindBinary(n, t)

	case *CallNode:
		spec := builtins[n.Func]
		args := make([]*Compiled, len(n.Args))
		kinds := make([]table.Kind, len(n.Args))
		for i, a := range n.Args {
			c, err := BindNode(a, t)
			if err != nil {
				return nil, err
			}
			args[i] = c
			kinds[i] = c.Kind
		}
		kind := spec.kind(kinds)
		return &Compiled{Kind: kind, Fn: func(row int) table.Value {
			vals := make([]table.Value, len(args))
			for i, a := range args {
				vals[i] = a.Fn(row)
				if vals[i].Missing && !spec.passMissing {
					return table.MissingValue(kind)
				}
			}
			return spec.eval(vals)
		}}, nil

	default:
		return nil, fmt.Errorf("expr: unknown node %T", node)
	}
}

func bindBinary(n *BinaryNode, t *table.Table) (*Compiled, error) {
	l, err := BindNode(n.L, t)
	if err != nil {
		return nil, err
	}
	r, err := BindNode(n.R, t)
	if err != nil {
		return nil, err
	}
	bothNumeric := l.Kind.Numeric() && r.Kind.Numeric()
	bothString := l.Kind == table.KindString && r.Kind == table.KindString

	switch n.Op {
	case "+":
		if bothString {
			return &Compiled{Kind: table.KindString, Fn: func(row int) table.Value {
				a, b := l.Fn(row), r.Fn(row)
				if a.Missing || b.Missing {
					return table.MissingValue(table.KindString)
				}
				return table.StringValue(a.S + b.S)
			}}, nil
		}
		fallthrough
	case "-", "*":
		if !bothNumeric {
			return nil, fmt.Errorf("expr: %s over %v and %v", n.Op, l.Kind, r.Kind)
		}
		kind := table.KindInt
		if l.Kind == table.KindDouble || r.Kind == table.KindDouble {
			kind = table.KindDouble
		}
		op := n.Op
		return &Compiled{Kind: kind, Fn: func(row int) table.Value {
			a, b := l.Fn(row), r.Fn(row)
			if a.Missing || b.Missing {
				return table.MissingValue(kind)
			}
			if kind == table.KindDouble {
				x, y := a.Double(), b.Double()
				switch op {
				case "+":
					return table.DoubleValue(x + y)
				case "-":
					return table.DoubleValue(x - y)
				default:
					return table.DoubleValue(x * y)
				}
			}
			x, y := a.I, b.I
			switch op {
			case "+":
				return table.IntValue(x + y)
			case "-":
				return table.IntValue(x - y)
			default:
				return table.IntValue(x * y)
			}
		}}, nil

	case "/":
		if !bothNumeric {
			return nil, fmt.Errorf("expr: / over %v and %v", l.Kind, r.Kind)
		}
		// Division always yields a double (as in JavaScript, the language
		// this substitutes for); division by zero yields missing.
		return &Compiled{Kind: table.KindDouble, Fn: func(row int) table.Value {
			a, b := l.Fn(row), r.Fn(row)
			if a.Missing || b.Missing || b.Double() == 0 {
				return table.MissingValue(table.KindDouble)
			}
			return table.DoubleValue(a.Double() / b.Double())
		}}, nil

	case "%":
		if !bothNumeric {
			return nil, fmt.Errorf("expr: %% over %v and %v", l.Kind, r.Kind)
		}
		kind := table.KindInt
		if l.Kind == table.KindDouble || r.Kind == table.KindDouble {
			kind = table.KindDouble
		}
		return &Compiled{Kind: kind, Fn: func(row int) table.Value {
			a, b := l.Fn(row), r.Fn(row)
			if a.Missing || b.Missing || b.Double() == 0 {
				return table.MissingValue(kind)
			}
			if kind == table.KindDouble {
				return table.DoubleValue(math.Mod(a.Double(), b.Double()))
			}
			return table.IntValue(a.I % b.I)
		}}, nil

	case "==", "!=", "<", "<=", ">", ">=":
		if !bothNumeric && !bothString {
			return nil, fmt.Errorf("expr: %s over %v and %v", n.Op, l.Kind, r.Kind)
		}
		op := n.Op
		return &Compiled{Kind: table.KindInt, Fn: func(row int) table.Value {
			a, b := l.Fn(row), r.Fn(row)
			if a.Missing || b.Missing {
				return table.MissingValue(table.KindInt)
			}
			c := a.Compare(b)
			switch op {
			case "==":
				return boolValue(c == 0)
			case "!=":
				return boolValue(c != 0)
			case "<":
				return boolValue(c < 0)
			case "<=":
				return boolValue(c <= 0)
			case ">":
				return boolValue(c > 0)
			default:
				return boolValue(c >= 0)
			}
		}}, nil

	case "&&":
		return &Compiled{Kind: table.KindInt, Fn: func(row int) table.Value {
			a := l.Fn(row)
			if !a.Missing && !truthy(a) {
				return boolValue(false) // short-circuit
			}
			b := r.Fn(row)
			if a.Missing || b.Missing {
				return table.MissingValue(table.KindInt)
			}
			return boolValue(truthy(b))
		}}, nil

	case "||":
		return &Compiled{Kind: table.KindInt, Fn: func(row int) table.Value {
			a := l.Fn(row)
			if !a.Missing && truthy(a) {
				return boolValue(true) // short-circuit
			}
			b := r.Fn(row)
			if a.Missing || b.Missing {
				return table.MissingValue(table.KindInt)
			}
			return boolValue(truthy(b))
		}}, nil

	default:
		return nil, fmt.Errorf("expr: unknown operator %q", n.Op)
	}
}

// Predicate binds src as a row filter: the compiled expression evaluated
// with missing treated as false (filters drop rows the predicate cannot
// decide).
func Predicate(src string, t *table.Table) (func(row int) bool, error) {
	c, err := Bind(src, t)
	if err != nil {
		return nil, err
	}
	return func(row int) bool { return truthy(c.Fn(row)) }, nil
}

// DeriveColumn binds src and wraps it as a computed column over the
// table's physical rows.
func DeriveColumn(src string, t *table.Table) (table.Column, error) {
	c, err := Bind(src, t)
	if err != nil {
		return nil, err
	}
	return table.NewComputedColumn(c.Kind, t.Members().Max(), c.Fn), nil
}
