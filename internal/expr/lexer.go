// Package expr implements the user-defined map language of the
// spreadsheet: small, pure expressions over row values used to derive
// new columns and to filter rows (paper §5.6 "User-defined maps"). It
// substitutes for Hillview's server-side JavaScript (Nashorn) with a
// deterministic, sandboxed evaluator: no loops, no state, no I/O — a
// per-row function that the engine can recompute at any time, which is
// exactly the property the soft-state memory design relies on.
//
// Expressions are written over column names, e.g.
//
//	DepDelay - ArrDelay
//	Origin == "SFO" && DepDelay > 30
//	year(FlightDate) * 100 + month(FlightDate)
//
// Booleans are represented as int 0/1 (the Value type has no bool kind);
// any non-zero number is truthy. Missing values propagate through
// operators and functions, except isMissing and coalesce.
package expr

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp     // operators and punctuation
	tokLParen // (
	tokRParen // )
	tokComma
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits expression source into tokens.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c == '(':
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokLParen, text: "(", pos: start})
		case c == ')':
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokRParen, text: ")", pos: start})
		case c == ',':
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokComma, text: ",", pos: start})
		default:
			op := l.lexOp()
			if op == "" {
				return nil, fmt.Errorf("expr: unexpected character %q at %d", c, start)
			}
			l.tokens = append(l.tokens, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
			return
		}
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return fmt.Errorf("expr: unterminated escape at %d", start)
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"', '\'':
				sb.WriteByte(e)
			default:
				return fmt.Errorf("expr: unknown escape \\%c at %d", e, l.pos)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("expr: unterminated string at %d", start)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

// lexOp recognizes the longest operator at the cursor.
func (l *lexer) lexOp() string {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		l.pos += 2
		return two
	}
	switch c := l.src[l.pos]; c {
	case '+', '-', '*', '/', '%', '<', '>', '!':
		l.pos++
		return string(c)
	}
	return ""
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
