package expr

import (
	"fmt"
	"strings"
)

// Node is an expression AST node.
type Node interface {
	// String renders the node as parseable source.
	String() string
}

// NumberNode is a numeric literal; Int is true when the literal had no
// fractional or exponent part.
type NumberNode struct {
	IsInt bool
	I     int64
	F     float64
	Text  string
}

// String implements Node.
func (n *NumberNode) String() string { return n.Text }

// StringNode is a string literal.
type StringNode struct{ S string }

// String implements Node.
func (n *StringNode) String() string { return fmt.Sprintf("%q", n.S) }

// ColumnNode references a column by name.
type ColumnNode struct{ Name string }

// String implements Node.
func (n *ColumnNode) String() string { return n.Name }

// UnaryNode is negation or logical not.
type UnaryNode struct {
	Op string // "-" or "!"
	X  Node
}

// String implements Node.
func (n *UnaryNode) String() string { return n.Op + "(" + n.X.String() + ")" }

// BinaryNode is an infix operator application.
type BinaryNode struct {
	Op   string
	L, R Node
}

// String implements Node.
func (n *BinaryNode) String() string {
	return "(" + n.L.String() + " " + n.Op + " " + n.R.String() + ")"
}

// CallNode is a builtin function application.
type CallNode struct {
	Func string
	Args []Node
}

// String implements Node.
func (n *CallNode) String() string {
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.String()
	}
	return n.Func + "(" + strings.Join(parts, ", ") + ")"
}
