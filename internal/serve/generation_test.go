package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
)

// genRunner is a fakeRunner that also reports dataset generations, so
// the scheduler qualifies its dedup and batch keys with them.
type genRunner struct {
	fakeRunner
	gen atomic.Uint64
}

func (g *genRunner) DatasetGeneration(id string) uint64 { return g.gen.Load() }

// TestGenerationSplitsDedup pins the staleness contract: a query that
// arrives after the dataset's generation advanced must not join a
// flight started against the previous live set — even though dataset
// and sketch are identical.
func TestGenerationSplitsDedup(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	run := &genRunner{}
	run.fn = func(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		started <- struct{}{}
		<-block
		return int64(run.gen.Load()), nil
	}
	s := New(run, Config{MaxInFlight: 4, Deadline: -1})
	if s.gens == nil {
		t.Fatal("scheduler did not detect the runner's GenerationProvider")
	}

	var wg sync.WaitGroup
	results := make(chan sketch.Result, 3)
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.RunSketch(context.Background(), "d", cacheableSketch(), nil)
			if err != nil {
				t.Error(err)
			}
			results <- res
		}()
	}
	launch()
	<-started // first flight executing at generation 0

	// Same query again at generation 0: must join, not re-execute.
	launch()
	for i := 0; i < 1000 && s.Stats().DedupJoins == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := s.Stats().DedupJoins; got != 1 {
		t.Fatalf("dedup joins = %d, want 1", got)
	}

	// Advance the generation (an ingest seal) and query again: the new
	// query must start its own execution against the new live set.
	run.gen.Add(1)
	launch()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("post-advance query never started its own execution")
	}
	close(block)
	wg.Wait()
	if got := run.calls.Load(); got != 2 {
		t.Fatalf("underlying executions = %d, want 2 (one per generation)", got)
	}
}

// TestGenerationSplitsBatchWindow pins the same contract for scan
// batching: queries on different generations of one dataset must not
// coalesce into one leaf pass.
func TestGenerationSplitsBatchWindow(t *testing.T) {
	run := &genRunner{}
	run.fn = func(ctx context.Context, _ string, sk sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		if ms, ok := sk.(*sketch.MultiSketch); ok {
			res := ms.Zero().(*sketch.MultiResult)
			for i := range res.Members {
				res.Members[i] = int64(i)
			}
			return res, nil
		}
		return int64(0), nil
	}
	// The window is generous so both windows are reliably open at once
	// when the test inspects them.
	s := New(run, Config{MaxInFlight: 4, Deadline: -1, BatchWindow: 500 * time.Millisecond})

	var wg sync.WaitGroup
	runOne := func(sk sketch.Sketch) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.RunSketch(context.Background(), "d", sk, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	// Two distinct cacheable sketches at generation 0 open a window...
	runOne(cacheableSketch())
	for i := 0; i < 1000; i++ {
		s.mu.Lock()
		n := len(s.batches)
		s.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// ...then the generation advances and a third query arrives: it must
	// open its own window keyed by the new generation.
	run.gen.Add(1)
	runOne(&sketch.DistinctCountSketch{Col: "x"})
	n := 0
	for i := 0; i < 1000; i++ {
		s.mu.Lock()
		n = len(s.batches)
		s.mu.Unlock()
		if n >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n != 2 {
		t.Fatalf("open batch windows = %d, want 2 (one per generation)", n)
	}
	wg.Wait()
}
