package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
)

// The typed error contract of the serving layer. Handlers map these to
// HTTP statuses with HTTPStatus/WriteError:
//
//	ErrShed          → 429 Too Many Requests (+ Retry-After)
//	ErrQueueTimeout  → 503 Service Unavailable (+ Retry-After)
//	ErrResultBudget  → 413 Content Too Large
//	DeadlineExceeded → 504 Gateway Timeout (query ran out of time)
//	Canceled         → 499 (client closed request; nothing useful to say)
//	*engine.PanicError → 500 Internal Server Error
//	anything else    → 400 Bad Request (semantic errors: bad column, …)
var (
	// ErrShed reports that both the execution slots and the wait queue
	// were full at arrival; the query was rejected without queueing.
	ErrShed = errors.New("serve: overloaded, try again later")
	// ErrQueueTimeout reports that the query's deadline expired while it
	// was still waiting for an execution slot — congestion, not a slow
	// query. It wraps context.DeadlineExceeded.
	ErrQueueTimeout = errors.New("serve: timed out waiting for an execution slot")
	// ErrResultBudget reports a query whose requested result size
	// exceeds the per-query budget.
	ErrResultBudget = errors.New("serve: result budget exceeded")
)

// StatusClientClosedRequest is the conventional (nginx) status for a
// request abandoned by the client; no standard name exists in net/http.
const StatusClientClosedRequest = 499

// HTTPStatus maps a scheduler error to its HTTP status code per the
// typed error contract above; nil maps to 200.
func HTTPStatus(err error) int {
	var pe *engine.PanicError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQueueTimeout):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrResultBudget):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

// WriteError writes err as its mapped HTTP response, attaching a
// Retry-After hint to the overload statuses (429/503). A 499 client
// disconnect is still "written" for uniformity; the socket is gone.
func WriteError(w http.ResponseWriter, err error, retryAfter time.Duration) {
	code := HTTPStatus(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	http.Error(w, err.Error(), code)
}

// WriteError writes err per the scheduler's configured Retry-After.
func (s *Scheduler) WriteError(w http.ResponseWriter, err error) {
	WriteError(w, err, s.cfg.RetryAfter)
}

// recoverWriter tracks whether the wrapped handler has started the
// response, so the panic recovery path can tell "nothing sent yet —
// write a clean 500" apart from "headers (or body) already out — a
// second WriteHeader would be a protocol violation net/http only
// logs". Flush passes through so streaming handlers keep working
// behind the wrapper.
type recoverWriter struct {
	http.ResponseWriter
	wrote bool
}

func (rw *recoverWriter) WriteHeader(code int) {
	rw.wrote = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recoverWriter) Write(b []byte) (int, error) {
	rw.wrote = true
	return rw.ResponseWriter.Write(b)
}

func (rw *recoverWriter) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Recovered wraps an HTTP handler so a panic anywhere in it — a render
// bug, a malformed-parameter crash — becomes a 500 for that request,
// counted in the scheduler's panic stats, instead of an aborted
// connection (net/http's default) or a dead process. The 500 goes
// through the scheduler's WriteError (the one typed-error path every
// handler response takes) and only when the handler has not already
// written: a panic after the response started must not stomp a second
// status line onto a stream the client is half-way through.
func (s *Scheduler) Recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rw := &recoverWriter{ResponseWriter: w}
		defer func() {
			if pe := engine.CapturePanic(recover()); pe != nil {
				s.panics.Add(1)
				if !rw.wrote {
					s.WriteError(rw, pe)
				}
			}
		}()
		h(rw, r)
	}
}
