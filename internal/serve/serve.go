// Package serve is the overload-safe query scheduler between the HTTP
// handlers and the engine: every sketch execution of a multi-user
// Hillview deployment flows through a Scheduler, which provides
//
//   - admission control: a bounded semaphore of concurrently executing
//     scans plus a bounded FIFO wait queue; work past both is rejected
//     promptly (ErrShed → 429 + Retry-After) instead of piling up until
//     the process OOMs;
//   - deadlines: queries without their own deadline get the server
//     default, which propagates through engine.Sketch/SketchReplicated
//     down to chunk tasks (the mid-chunk cancellation probe,
//     table.Table.WithCancel) and cluster RPCs (MsgCancel), so an
//     abandoned browser tab stops burning cores;
//   - in-flight dedup: identical (dataset, sketch) queries join one
//     running execution via single-flight and share its partial stream —
//     the computation cache (paper §5.4) extended to running queries,
//     sound because summaries are pure functions of (dataset, sketch)
//     under Hillview's determinism contract;
//   - scan batching: distinct cacheable queries arriving on the same
//     dataset within Config.BatchWindow coalesce into one
//     sketch.MultiSketch execution — one leaf pass over the data feeds
//     every member, whose results are demuxed so each subscriber sees
//     exactly its own sketch's partials and final result, bit-identical
//     to a solo run (the batch shares the solo chunk geometry, seeds,
//     and merge order). A member whose subscribers all leave is masked
//     out of the remaining scan without disturbing its siblings;
//   - panic isolation and resource governance: a panic anywhere under a
//     query becomes that query's 500, counted in Stats, and per-query
//     result-row budgets bound table-page responses before they execute.
//
// The Scheduler wraps anything with the engine root's RunSketch shape
// and exposes the same shape itself, so it slots between the
// spreadsheet layer and the engine without either knowing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// Runner executes sketches; *engine.Root satisfies it, and Scheduler
// itself does too (schedulers nest, though one layer is the norm).
type Runner interface {
	RunSketch(ctx context.Context, datasetID string, sk sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error)
}

// Defaults for Config fields left zero.
const (
	DefaultQueueDepth    = 64
	DefaultDeadline      = 30 * time.Second
	DefaultMaxResultRows = 100000
	DefaultRetryAfter    = time.Second
	// DefaultBatchWindow is the batching window the hillview binary
	// passes by default; the Config zero value keeps batching off.
	DefaultBatchWindow = time.Millisecond
)

// Config tunes a Scheduler. The zero value gets sensible server
// defaults; set a field negative to disable it where noted.
type Config struct {
	// MaxInFlight bounds concurrently executing scans. Each scan is
	// internally parallel across the leaf pool, so this is a multiple of
	// GOMAXPROCS, not of expected user count. 0 means 2×GOMAXPROCS.
	MaxInFlight int
	// QueueDepth bounds queries waiting for an execution slot; arrivals
	// past it are shed with ErrShed. 0 means DefaultQueueDepth.
	QueueDepth int
	// Deadline is the default per-query deadline, applied when the
	// caller's context has none tighter. 0 means DefaultDeadline; < 0
	// disables the default deadline.
	Deadline time.Duration
	// MaxResultRows bounds the row count a single query may request
	// (e.g. a nextk table page's K). 0 means DefaultMaxResultRows; < 0
	// disables the budget.
	MaxResultRows int
	// RetryAfter is the hint written on 429/503 responses. 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// BatchWindow is the scan-batching window: a cacheable query that
	// cannot join an identical in-flight execution waits up to this long
	// for other cacheable queries on the same dataset, and the group runs
	// as one sketch.MultiSketch leaf pass. 0 (the zero value) disables
	// batching — every query executes exactly as without this feature.
	BatchWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.Deadline == 0 {
		c.Deadline = DefaultDeadline
	}
	if c.MaxResultRows == 0 {
		c.MaxResultRows = DefaultMaxResultRows
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Stats is a snapshot of scheduler telemetry. InFlight and Queued are
// gauges; the rest are cumulative counters.
type Stats struct {
	InFlight         int64 `json:"in_flight"`
	Queued           int64 `json:"queued"`
	Admitted         int64 `json:"admitted"`
	Shed             int64 `json:"shed"`
	QueueTimeouts    int64 `json:"queue_timeouts"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Cancelled        int64 `json:"cancelled"`
	PanicsRecovered  int64 `json:"panics_recovered"`
	DedupJoins       int64 `json:"dedup_joins"`
	Execs            int64 `json:"execs"`
	BatchesFormed    int64 `json:"batches_formed"`
	BatchMembers     int64 `json:"batch_members"`
	ScansSaved       int64 `json:"scans_saved"`
}

// Scheduler is the serving layer's query scheduler. It is safe for
// concurrent use by any number of request goroutines.
type Scheduler struct {
	run   Runner
	cfg   Config
	slots chan struct{} // execution semaphore; buffered to MaxInFlight
	// gens, when the runner provides generations (*engine.Root does),
	// qualifies dedup and batch keys with the dataset's generation, so a
	// query started before an ingest seal never shares its execution or
	// result with one started after.
	gens engine.GenerationProvider

	inflight  atomic.Int64
	queued    atomic.Int64
	admitted  atomic.Int64
	shed      atomic.Int64
	queueTO   atomic.Int64
	deadlines atomic.Int64
	cancels   atomic.Int64
	panics    atomic.Int64
	dedups    atomic.Int64
	execs     atomic.Int64

	batchesFormed atomic.Int64
	batchMembers  atomic.Int64
	scansSaved    atomic.Int64

	// latency is the end-to-end RunSketch latency histogram (queue wait
	// included), registered with the obs registry by the hillview binary.
	latency obs.Histogram

	mu      sync.Mutex
	flights map[string]*flight
	batches map[string]*pendingBatch // per datasetID, while a window is open
}

// New builds a scheduler over run. When run reports dataset generations
// (engine.GenerationProvider — *engine.Root does), dedup and batch keys
// are generation-qualified automatically.
func New(run Runner, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		run:     run,
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxInFlight),
		flights: make(map[string]*flight),
		batches: make(map[string]*pendingBatch),
	}
	if gp, ok := run.(engine.GenerationProvider); ok {
		s.gens = gp
	}
	return s
}

// generation resolves a dataset's current generation (0 when the runner
// does not track them).
func (s *Scheduler) generation(datasetID string) uint64 {
	if s.gens == nil {
		return 0
	}
	return s.gens.DatasetGeneration(datasetID)
}

// Config returns the scheduler's effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// LatencyHistogram exposes the end-to-end query latency histogram for
// registration with an obs.Registry.
func (s *Scheduler) LatencyHistogram() *obs.Histogram { return &s.latency }

// Stats returns a telemetry snapshot.
func (s *Scheduler) Stats() Stats {
	return Stats{
		InFlight:         s.inflight.Load(),
		Queued:           s.queued.Load(),
		Admitted:         s.admitted.Load(),
		Shed:             s.shed.Load(),
		QueueTimeouts:    s.queueTO.Load(),
		DeadlineExceeded: s.deadlines.Load(),
		Cancelled:        s.cancels.Load(),
		PanicsRecovered:  s.panics.Load(),
		DedupJoins:       s.dedups.Load(),
		Execs:            s.execs.Load(),
		BatchesFormed:    s.batchesFormed.Load(),
		BatchMembers:     s.batchMembers.Load(),
		ScansSaved:       s.scansSaved.Load(),
	}
}

// RunSketch implements Runner: it runs sk over datasetID under
// admission control, the default deadline, and single-flight dedup.
// Errors are the typed scheduler contract (ErrShed, ErrQueueTimeout,
// ErrResultBudget, context errors, *engine.PanicError) plus whatever
// the underlying runner returns; HTTPStatus maps them to status codes.
func (s *Scheduler) RunSketch(ctx context.Context, datasetID string, sk sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error) {
	defer s.latency.ObserveSince(time.Now())
	tr := obs.TraceFrom(ctx)
	tr.SetQuery(datasetID, sk.Name())
	if err := s.checkBudget(sk); err != nil {
		return nil, err
	}
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()

	// Only deterministic (cacheable) sketches may share an execution:
	// the cache key identifies the result, so every subscriber is owed
	// the same bits. Randomized sketches carry explicit seeds — equal
	// seeds make them cacheable too; distinct seeds mean distinct
	// queries, which is exactly what the key captures. Growing datasets
	// add their generation to the identity: a result is a pure function
	// of (dataset contents, sketch), and the generation stands in for
	// the contents.
	qualified := engine.QualifyDataset(datasetID, s.generation(datasetID))
	key, sharable := engine.Key(qualified, sk)
	if !sharable {
		return s.classify(s.execute(ctx, datasetID, sk, onPartial))
	}
	// WholePartition sketches change the leaf chunk geometry for every
	// member of a batch, which would break the bit-identity contract, so
	// they keep the plain single-flight path. Batches gather per
	// qualified dataset: members must all scan the same live set.
	if _, whole := sk.(sketch.WholePartition); s.cfg.BatchWindow > 0 && !whole {
		fl, sub := s.joinBatch(tr, key, qualified, datasetID, sk, onPartial)
		return s.classify(fl.wait(ctx, s, sub))
	}
	fl, sub := s.joinFlight(tr, key, datasetID, sk, onPartial)
	return s.classify(fl.wait(ctx, s, sub))
}

// classify tallies per-query outcome counters and passes err through.
func (s *Scheduler) classify(res sketch.Result, err error) (sketch.Result, error) {
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlines.Add(1)
	case errors.Is(err, context.Canceled):
		s.cancels.Add(1)
	}
	return res, err
}

// checkBudget rejects queries whose requested result size exceeds the
// per-query budget, before any execution cost is paid.
func (s *Scheduler) checkBudget(sk sketch.Sketch) error {
	max := s.cfg.MaxResultRows
	if max <= 0 {
		return nil
	}
	if nk, ok := sk.(*sketch.NextKSketch); ok && nk.K > max {
		return fmt.Errorf("%w: table page of %d rows exceeds the %d-row limit", ErrResultBudget, nk.K, max)
	}
	return nil
}

// withDeadline applies the server default deadline unless the caller
// already carries a tighter one.
func (s *Scheduler) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.Deadline <= 0 {
		return ctx, func() {}
	}
	if d, ok := ctx.Deadline(); ok && time.Until(d) <= s.cfg.Deadline {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.Deadline)
}

// execute runs one underlying execution: admission, then the runner,
// with panics recovered into the query's error.
func (s *Scheduler) execute(ctx context.Context, datasetID string, sk sketch.Sketch, onPartial engine.PartialFunc) (res sketch.Result, err error) {
	tr := obs.TraceFrom(ctx)
	qsp := tr.StartSpan("serve.queue")
	if err := s.admit(ctx); err != nil {
		qsp.EndNote("rejected")
		return nil, err
	}
	qsp.End()
	s.inflight.Add(1)
	esp := tr.StartSpan("serve.exec")
	defer func() {
		s.inflight.Add(-1)
		<-s.slots
		// Recover here — after the slot release defer is queued — so a
		// panicking sketch can neither leak a slot nor kill the server.
		if pe := engine.CapturePanic(recover()); pe != nil {
			res, err = nil, pe
		}
		var pe *engine.PanicError
		if errors.As(err, &pe) {
			s.panics.Add(1)
		}
		esp.End()
	}()
	s.execs.Add(1)
	return s.run.RunSketch(ctx, datasetID, sk, onPartial)
}

// admit acquires an execution slot or a queue position, shedding when
// both are full. Blocked senders on the slot channel are served FIFO by
// the runtime, which is the bounded FIFO wait queue.
func (s *Scheduler) admit(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		s.admitted.Add(1)
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.shed.Add(1)
		return fmt.Errorf("%w: %d executing, %d queued", ErrShed, s.cfg.MaxInFlight, s.cfg.QueueDepth)
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		s.admitted.Add(1)
		return nil
	case <-ctx.Done():
		err := ctx.Err()
		if errors.Is(err, context.DeadlineExceeded) {
			// The deadline ran out before execution ever started: that is
			// server congestion (503), not a slow query (504).
			s.queueTO.Add(1)
			return fmt.Errorf("%w: %w", ErrQueueTimeout, err)
		}
		return err
	}
}

// flight is one shared execution of a cacheable (dataset, sketch) pair.
// All bookkeeping is under Scheduler.mu; the execution itself runs on
// its own goroutine with a detached, server-deadlined context so no
// single subscriber's disconnect kills it — only all of them leaving
// does.
type flight struct {
	key      string
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	res      sketch.Result
	err      error
	subs     map[int]*subscriber
	nextSub  int
	finished bool
	removed  bool

	// Batched flights: set at batch formation. The flight is member
	// memberIdx of batch's MultiSketch; its ctx/cancel are unused (the
	// batch owns the execution context) and abandonment masks the member
	// instead of cancelling (see wait).
	batch     *batchExec
	memberIdx int

	// Tracing: the creating query's trace (nil when untraced) rides the
	// flight so the shared execution's spans land somewhere; joiners only
	// get a dedup annotation. bwin is the open serve.batch_window span of
	// a flight waiting in a batching window (zero when untraced or solo).
	tr   *obs.Trace
	bwin obs.SpanHandle
}

// subscriber is one query joined to a flight. gone guards the partial
// callback: after the subscriber's wait returns, its callback is never
// invoked again (the HTTP handler behind it is gone).
type subscriber struct {
	token     int
	mu        sync.Mutex
	gone      bool
	onPartial engine.PartialFunc
}

func (sub *subscriber) deliver(p engine.Partial) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if !sub.gone && sub.onPartial != nil {
		sub.onPartial(p)
	}
}

// newFlight builds a registered flight for key with a detached,
// server-deadlined context. Caller holds s.mu.
func (s *Scheduler) newFlight(key string) *flight {
	fctx, fcancel := context.WithCancel(context.Background())
	if s.cfg.Deadline > 0 {
		fctx, fcancel = context.WithTimeout(context.Background(), s.cfg.Deadline)
	}
	fl := &flight{key: key, ctx: fctx, cancel: fcancel, done: make(chan struct{}), subs: make(map[int]*subscriber)}
	s.flights[key] = fl
	return fl
}

// subscribe attaches a new subscriber to fl. Caller holds s.mu.
func (fl *flight) subscribe(onPartial engine.PartialFunc) *subscriber {
	sub := &subscriber{token: fl.nextSub, onPartial: onPartial}
	fl.nextSub++
	fl.subs[sub.token] = sub
	return sub
}

// joinFlight subscribes to the running flight for key, creating (and
// launching) it if absent. The creator's trace is injected into the
// flight's detached context so the shared execution records its spans
// there; joiners get a serve.dedup_join annotation instead.
func (s *Scheduler) joinFlight(tr *obs.Trace, key, datasetID string, sk sketch.Sketch, onPartial engine.PartialFunc) (*flight, *subscriber) {
	s.mu.Lock()
	fl := s.flights[key]
	created := fl == nil
	if created {
		fl = s.newFlight(key)
		if tr != nil {
			fl.tr = tr
			fl.ctx = obs.WithTrace(fl.ctx, tr)
		}
	} else {
		s.dedups.Add(1)
		tr.Annotate("serve.dedup_join", "")
	}
	sub := fl.subscribe(onPartial)
	s.mu.Unlock()
	if created {
		go s.runFlight(fl, datasetID, sk)
	}
	return fl, sub
}

// runFlight executes the shared query and publishes its outcome.
func (s *Scheduler) runFlight(fl *flight, datasetID string, sk sketch.Sketch) {
	defer fl.cancel()
	res, err := s.execute(fl.ctx, datasetID, sk, fl.fanout(s))
	s.mu.Lock()
	fl.res, fl.err = res, err
	fl.finished = true
	if !fl.removed {
		delete(s.flights, fl.key)
		fl.removed = true
	}
	s.mu.Unlock()
	close(fl.done)
}

// fanout builds the flight's partial callback: each partial is
// delivered to every current subscriber. Partials are cumulative
// snapshots, so a subscriber that joined late simply starts at the
// stream's current prefix.
func (fl *flight) fanout(s *Scheduler) engine.PartialFunc {
	return func(p engine.Partial) {
		s.mu.Lock()
		subs := make([]*subscriber, 0, len(fl.subs))
		for _, sub := range fl.subs {
			subs = append(subs, sub)
		}
		s.mu.Unlock()
		for _, sub := range subs {
			sub.deliver(p)
		}
	}
}

// wait blocks until the flight finishes or the subscriber's own context
// ends, then detaches. When the last subscriber detaches from an
// unfinished flight, the flight is cancelled and unregistered — later
// identical queries start fresh rather than joining a dying execution.
func (fl *flight) wait(ctx context.Context, s *Scheduler, sub *subscriber) (sketch.Result, error) {
	var (
		res sketch.Result
		err error
	)
	select {
	case <-fl.done:
		res, err = fl.res, fl.err
	case <-ctx.Done():
		err = ctx.Err()
	}
	sub.mu.Lock()
	sub.gone = true
	sub.mu.Unlock()
	s.mu.Lock()
	delete(fl.subs, sub.token)
	if len(fl.subs) == 0 && !fl.finished {
		if !fl.removed {
			delete(s.flights, fl.key)
			fl.removed = true
		}
		if fl.batch != nil {
			// Abandoning one batch member must not kill its siblings:
			// mask the member out of the remaining scan and cancel the
			// batch only when every member is gone. (A flight abandoned
			// before batch formation has batch == nil; formBatch drops
			// subscriber-less flights instead.)
			fl.batch.mask.Disable(fl.memberIdx)
			fl.batch.live--
			if fl.batch.live == 0 {
				fl.batch.cancel()
			}
		} else {
			fl.cancel()
		}
	}
	s.mu.Unlock()
	return res, err
}
