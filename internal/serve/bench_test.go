package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/storage"
	"repro/internal/table"
)

// The serving benchmark answers two questions for BENCH_serving.json:
//
//  1. Overhead: what does routing every query through the scheduler cost
//     vs calling the engine directly, at 1 and at 100 concurrent
//     sessions? (BenchmarkServeDirect / BenchmarkServeScheduled — run
//     them interleaved in one process; queries/s is ns/op inverted,
//     p99_ms is reported as a custom metric.)
//  2. Overload behavior: at 10x the scheduler's capacity, what fraction
//     of queries is shed, and do admitted queries still finish?
//     (BenchmarkServeOverloadShed — shed_frac metric.)
//
// Each query uses a distinct sampling seed so neither the engine cache
// nor single-flight dedup can serve it without a scan: both legs do the
// same work per op, and the A/B isolates pure scheduling overhead.

var registerFlights sync.Once

func benchRoot(b *testing.B) *engine.Root {
	b.Helper()
	registerFlights.Do(flights.Register)
	root := engine.NewRoot(storage.NewLoader(engine.Config{AggregationWindow: -1}, 0))
	if _, err := root.Load("fl", "flights:rows=50000,parts=4,seed=7"); err != nil {
		b.Fatal(err)
	}
	return root
}

var benchSeed atomic.Uint64

// benchSketch builds a per-call unique query (distinct seed → distinct
// cache key) so every op pays for a real scan.
func benchSketch() sketch.Sketch {
	return &sketch.SampledHistogramSketch{
		Col:     "Distance",
		Buckets: sketch.NumericBuckets(table.KindDouble, 0, 3000, 50),
		Rate:    0.5,
		Seed:    benchSeed.Add(1),
	}
}

// runSessions drives b.N queries through run from `sessions` concurrent
// client goroutines and reports p99 latency alongside ns/op.
func runSessions(b *testing.B, sessions int, run Runner) {
	b.Helper()
	var (
		mu   sync.Mutex
		lats = make([]time.Duration, 0, b.N)
		next atomic.Int64
	)
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, b.N/sessions+1)
			for next.Add(1) <= int64(b.N) {
				start := time.Now()
				if _, err := run.RunSketch(context.Background(), "fl", benchSketch(), nil); err != nil {
					b.Error(err)
					return
				}
				local = append(local, time.Since(start))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	b.StopTimer()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	b.ReportMetric(float64(p99)/1e6, "p99_ms")
}

func BenchmarkServeDirect(b *testing.B) {
	root := benchRoot(b)
	for _, sessions := range []int{1, 100} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			runSessions(b, sessions, root)
		})
	}
}

func BenchmarkServeScheduled(b *testing.B) {
	root := benchRoot(b)
	// Provisioned for the benchmark's peak concurrency: the A/B measures
	// per-query scheduling overhead, not shedding (that is
	// BenchmarkServeOverloadShed), so no query may be turned away.
	s := New(root, Config{MaxInFlight: 128, QueueDepth: 128, Deadline: -1})
	for _, sessions := range []int{1, 100} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			runSessions(b, sessions, s)
		})
	}
}

// fixedServiceRunner completes every query after a fixed service time.
// The shed benchmark uses it instead of the real engine because on a
// single-vCPU host an in-process scan runs to completion before the
// next client goroutine is scheduled — bursts serialize and nothing
// sheds, which measures the runtime's scheduler, not admission control.
// A timer genuinely parks the query goroutine, so the burst overlaps.
type fixedServiceRunner struct{ d time.Duration }

func (f fixedServiceRunner) RunSketch(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
	select {
	case <-time.After(f.d):
		return int64(1), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// BenchmarkServeOverloadShed fires 10x the scheduler's total capacity
// (slots + queue) in concurrent bursts of fixed-service-time queries
// and reports the shed fraction. Admitted queries must all succeed;
// shed queries must return ErrShed — anything else fails the benchmark.
func BenchmarkServeOverloadShed(b *testing.B) {
	const slots, queue = 4, 8
	s := New(fixedServiceRunner{d: 2 * time.Millisecond}, Config{MaxInFlight: slots, QueueDepth: queue, Deadline: -1})
	clients := 10 * (slots + queue)

	var ok, shed atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := s.RunSketch(context.Background(), "fl", benchSketch(), nil)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrShed):
					shed.Add(1)
				default:
					b.Errorf("unexpected error under overload: %v", err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	total := ok.Load() + shed.Load()
	if total > 0 {
		b.ReportMetric(float64(shed.Load())/float64(total), "shed_frac")
		b.ReportMetric(float64(ok.Load())/float64(b.N), "admitted/burst")
	}
}

// batchBenchRows is the scan-batching benchmark's table size: big
// enough that the leaf pass dominates scheduling noise.
const batchBenchRows = 10_000_000

// batchBenchData builds one 10M-row, 8-partition double-column table
// and a LocalDataSet over it.
func batchBenchData(b *testing.B) *engine.LocalDataSet {
	b.Helper()
	const parts = 8
	schema := table.NewSchema(table.ColumnDesc{Name: "v", Kind: table.KindDouble})
	tabs := make([]*table.Table, parts)
	for p := 0; p < parts; p++ {
		n := batchBenchRows / parts
		vals := make([]float64, n)
		x := uint64(p)*0x9e3779b97f4a7c15 + 1
		for i := range vals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			vals[i] = float64(x%1_000_000) / 1_000_000
		}
		tabs[p] = table.New(fmt.Sprintf("big-p%d", p), schema,
			[]table.Column{table.NewDoubleColumn(vals, nil)}, table.FullMembership(n))
	}
	return engine.NewLocal("big", tabs, engine.Config{AggregationWindow: -1, ChunkRows: 1 << 17, StaticAssignment: true})
}

// batchBenchSketches builds K distinct cacheable queries (different
// bucket counts → different cache keys) over the shared column.
func batchBenchSketches(k int) []sketch.Sketch {
	sks := make([]sketch.Sketch, k)
	for i := range sks {
		sks[i] = &sketch.HistogramSketch{Col: "v", Buckets: sketch.NumericBuckets(table.KindDouble, 0, 1, 8+i)}
	}
	return sks
}

// BenchmarkServeBatch is the tentpole A/B for BENCH_serving.json: K=8
// concurrent distinct histogram queries over one 10M-row table, through
// a scheduler with the batching window open vs closed, interleaved in
// one process. scans/round is the leaf-pass count per burst — batched
// it collapses toward 1, unbatched it is K — and the batched results
// are verified bit-identical to solo runs before timing starts.
func BenchmarkServeBatch(b *testing.B) {
	const k = 8
	ds := batchBenchData(b)
	sks := batchBenchSketches(k)

	// Correctness gate ahead of the timed legs: one generously-windowed
	// batch must fold all K queries into a single scan whose members are
	// bit-identical to their solo runs.
	solo := make([]sketch.Result, k)
	for i, sk := range sks {
		var err error
		if solo[i], err = ds.Sketch(context.Background(), sk, nil); err != nil {
			b.Fatal(err)
		}
	}
	check := &dsRunner{ds: ds}
	cs := New(check, Config{MaxInFlight: k, Deadline: -1, BatchWindow: 300 * time.Millisecond})
	var wg sync.WaitGroup
	got := make([]sketch.Result, k)
	for i, sk := range sks {
		wg.Add(1)
		go func(i int, sk sketch.Sketch) {
			defer wg.Done()
			var err error
			if got[i], err = cs.RunSketch(context.Background(), "big", sk, nil); err != nil {
				b.Error(err)
			}
		}(i, sk)
	}
	wg.Wait()
	if b.Failed() {
		return
	}
	for i := range sks {
		if !deepEqualResult(got[i], solo[i]) {
			b.Fatalf("member %d: batched result differs from solo run", i)
		}
	}
	if n := check.count(); n > 2 {
		b.Fatalf("verification burst took %d leaf passes, want ≤2", n)
	}

	burst := func(b *testing.B, s *Scheduler) {
		var wg sync.WaitGroup
		for _, sk := range sks {
			wg.Add(1)
			go func(sk sketch.Sketch) {
				defer wg.Done()
				if _, err := s.RunSketch(context.Background(), "big", sk, nil); err != nil {
					b.Error(err)
				}
			}(sk)
		}
		wg.Wait()
	}
	for _, leg := range []struct {
		name   string
		window time.Duration
	}{{"batched", 2 * time.Millisecond}, {"unbatched", 0}} {
		b.Run(leg.name, func(b *testing.B) {
			run := &dsRunner{ds: ds}
			s := New(run, Config{MaxInFlight: 2 * k, Deadline: -1, BatchWindow: leg.window})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				burst(b, s)
			}
			b.StopTimer()
			b.ReportMetric(float64(run.count())/float64(b.N), "scans/round")
		})
	}
}

// deepEqualResult is reflect.DeepEqual behind a name the benchmark can
// use without importing reflect at every call site.
func deepEqualResult(a, b sketch.Result) bool { return reflect.DeepEqual(a, b) }

// BenchmarkServeTrace is the tracing-overhead A/B for BENCH_serving.json:
// the identical scan-bound query through the scheduler with a live trace
// attached (queue/exec spans, leaf-scan span, 1-in-16 sampled chunk
// spans, merge span, plus the tracer's ring record on Finish) vs fully
// untraced, legs interleaved in one process. The query is a 10M-row
// histogram so the per-query trace cost is measured against real work;
// acceptance is overhead below host noise.
func BenchmarkServeTrace(b *testing.B) {
	ds := batchBenchData(b)
	sk := &sketch.HistogramSketch{Col: "v", Buckets: sketch.NumericBuckets(table.KindDouble, 0, 1, 32)}
	tracer := obs.NewTracer(obs.DefaultTraceRing, 0, nil)
	for _, leg := range []struct {
		name string
		ctx  func() (context.Context, *obs.Trace)
	}{
		{"untraced", func() (context.Context, *obs.Trace) { return context.Background(), nil }},
		{"traced", func() (context.Context, *obs.Trace) {
			tr := tracer.Start("")
			return obs.WithTrace(context.Background(), tr), tr
		}},
	} {
		b.Run(leg.name, func(b *testing.B) {
			s := New(&dsRunner{ds: ds}, Config{MaxInFlight: 4, Deadline: -1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx, tr := leg.ctx()
				if _, err := s.RunSketch(ctx, "big", sk, nil); err != nil {
					b.Fatal(err)
				}
				tr.Finish(nil)
			}
		})
	}
}
