package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/table"
)

// fakeRunner is a scriptable Runner: fn decides each call's behavior;
// calls counts underlying executions (the dedup exactly-once oracle).
type fakeRunner struct {
	calls atomic.Int64
	fn    func(ctx context.Context, datasetID string, sk sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error)
}

func (f *fakeRunner) RunSketch(ctx context.Context, datasetID string, sk sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error) {
	f.calls.Add(1)
	return f.fn(ctx, datasetID, sk, onPartial)
}

// cacheableSketch returns a sketch with a CacheKey (dedup-eligible).
func cacheableSketch() sketch.Sketch {
	return &sketch.HistogramSketch{Col: "x", Buckets: sketch.NumericBuckets(table.KindDouble, 0, 100, 4)}
}

// uncacheableSketch returns a sketch without a CacheKey.
func uncacheableSketch(k int) sketch.Sketch {
	return &sketch.NextKSketch{Order: table.RecordOrder{{Column: "x"}}, K: k}
}

// TestAdmissionShedsPastQueue pins the admission contract with one slot
// and one queue position: of three concurrent queries, one runs, one
// waits, and one is shed immediately with ErrShed (HTTP 429).
func TestAdmissionShedsPastQueue(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	run := &fakeRunner{fn: func(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		started <- struct{}{}
		<-block
		return int64(1), nil
	}}
	s := New(run, Config{MaxInFlight: 1, QueueDepth: 1, Deadline: -1})

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.RunSketch(context.Background(), "d", uncacheableSketch(1), nil)
			errs <- err
		}()
	}
	launch()
	<-started // first query holds the slot
	launch()
	// Wait until the second occupies the queue position.
	for i := 0; i < 1000 && s.Stats().Queued == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := s.Stats().Queued; got != 1 {
		t.Fatalf("queued gauge = %d, want 1", got)
	}
	launch() // third: slot and queue full → shed
	var shedErr error
	select {
	case shedErr = <-errs:
	case <-time.After(5 * time.Second):
		t.Fatal("shed query did not return promptly")
	}
	if !errors.Is(shedErr, ErrShed) {
		t.Fatalf("third query err = %v, want ErrShed", shedErr)
	}
	if got := HTTPStatus(shedErr); got != http.StatusTooManyRequests {
		t.Errorf("HTTPStatus(ErrShed) = %d, want 429", got)
	}
	close(block)
	wg.Wait()
	st := s.Stats()
	if st.Shed != 1 || st.Admitted != 2 {
		t.Errorf("stats = %+v, want Shed=1 Admitted=2", st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("gauges not drained: %+v", st)
	}
}

// TestQueueTimeout pins the 503 half of the deadline contract: a query
// whose deadline expires while still queued fails with ErrQueueTimeout
// (still a context.DeadlineExceeded), not a 504.
func TestQueueTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{}, 1)
	run := &fakeRunner{fn: func(context.Context, string, sketch.Sketch, engine.PartialFunc) (sketch.Result, error) {
		started <- struct{}{}
		<-block
		return int64(1), nil
	}}
	s := New(run, Config{MaxInFlight: 1, QueueDepth: 4, Deadline: 50 * time.Millisecond})

	go s.RunSketch(context.Background(), "d", uncacheableSketch(1), nil)
	<-started
	_, err := s.RunSketch(context.Background(), "d", uncacheableSketch(1), nil)
	if !errors.Is(err, ErrQueueTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrQueueTimeout wrapping DeadlineExceeded", err)
	}
	if got := HTTPStatus(err); got != http.StatusServiceUnavailable {
		t.Errorf("HTTPStatus = %d, want 503", got)
	}
	if st := s.Stats(); st.QueueTimeouts != 1 {
		t.Errorf("QueueTimeouts = %d, want 1", st.QueueTimeouts)
	}
}

// TestDefaultDeadline pins the 504 half: a query that is admitted but
// runs past the server default deadline returns DeadlineExceeded.
func TestDefaultDeadline(t *testing.T) {
	run := &fakeRunner{fn: func(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		<-ctx.Done() // a well-behaved engine observes cancellation
		return nil, ctx.Err()
	}}
	s := New(run, Config{MaxInFlight: 2, Deadline: 30 * time.Millisecond})
	start := time.Now()
	_, err := s.RunSketch(context.Background(), "d", uncacheableSketch(1), nil)
	if !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want plain DeadlineExceeded", err)
	}
	if got := HTTPStatus(err); got != http.StatusGatewayTimeout {
		t.Errorf("HTTPStatus = %d, want 504", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
	if st := s.Stats(); st.DeadlineExceeded != 1 {
		t.Errorf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
}

// TestCallerDeadlinePreserved: a caller deadline tighter than the
// server default is kept, not widened.
func TestCallerDeadlinePreserved(t *testing.T) {
	run := &fakeRunner{fn: func(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		d, ok := ctx.Deadline()
		if !ok {
			t.Error("no deadline on runner context")
		}
		if time.Until(d) > time.Second {
			t.Errorf("deadline widened to %v away", time.Until(d))
		}
		return int64(1), nil
	}}
	s := New(run, Config{Deadline: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := s.RunSketch(ctx, "d", uncacheableSketch(1), nil); err != nil {
		t.Fatal(err)
	}
}

// TestSingleFlightDedup pins the dedup contract: N concurrent identical
// cacheable queries execute the underlying scan exactly once, every
// subscriber gets the same result, and each subscriber's partial
// callback sees the shared stream.
func TestSingleFlightDedup(t *testing.T) {
	const n = 8
	release := make(chan struct{})
	arrived := make(chan struct{}, n)
	run := &fakeRunner{fn: func(ctx context.Context, _ string, _ sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error) {
		<-release
		onPartial(engine.Partial{Result: int64(21), Done: 1, Total: 2})
		onPartial(engine.Partial{Result: int64(42), Done: 2, Total: 2})
		return int64(42), nil
	}}
	s := New(run, Config{MaxInFlight: 2, Deadline: -1})

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		partials = make([][]int64, n)
		results  = make([]sketch.Result, n)
		errs     = make([]error, n)
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			results[i], errs[i] = s.RunSketch(context.Background(), "d", cacheableSketch(), func(p engine.Partial) {
				mu.Lock()
				partials[i] = append(partials[i], p.Result.(int64))
				mu.Unlock()
			})
		}(i)
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	// Give every goroutine a chance to join the flight before release;
	// late joiners are still correct (cumulative partials), but the
	// exactly-once assertion needs them all inside RunSketch.
	for i := 0; i < 1000; i++ {
		s.mu.Lock()
		joined := 0
		for _, fl := range s.flights {
			joined += len(fl.subs)
		}
		s.mu.Unlock()
		if joined == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := run.calls.Load(); got != 1 {
		t.Fatalf("underlying executions = %d, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("subscriber %d: %v", i, errs[i])
		}
		if results[i] != sketch.Result(int64(42)) {
			t.Errorf("subscriber %d result = %v, want 42", i, results[i])
		}
		if len(partials[i]) != 2 || partials[i][0] != 21 || partials[i][1] != 42 {
			t.Errorf("subscriber %d partial stream = %v, want [21 42]", i, partials[i])
		}
	}
	st := s.Stats()
	if st.DedupJoins != n-1 {
		t.Errorf("DedupJoins = %d, want %d", st.DedupJoins, n-1)
	}
	if st.Execs != 1 {
		t.Errorf("Execs = %d, want 1", st.Execs)
	}
}

// TestUncacheableNeverDeduped: sketches without a cache key must each
// execute (their results may legitimately differ).
func TestUncacheableNeverDeduped(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	run := &fakeRunner{fn: func(context.Context, string, sketch.Sketch, engine.PartialFunc) (sketch.Result, error) {
		started <- struct{}{}
		<-block
		return int64(1), nil
	}}
	s := New(run, Config{MaxInFlight: 2, Deadline: -1})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.RunSketch(context.Background(), "d", uncacheableSketch(1), nil)
		}()
	}
	<-started
	<-started // both executing concurrently → no dedup happened
	close(block)
	wg.Wait()
	if got := run.calls.Load(); got != 2 {
		t.Errorf("underlying executions = %d, want 2", got)
	}
}

// TestPanicIsolation pins the 500 contract: a panicking execution fails
// only its own query with *engine.PanicError, releases its slot, and
// the scheduler keeps serving.
func TestPanicIsolation(t *testing.T) {
	bad := true
	run := &fakeRunner{fn: func(context.Context, string, sketch.Sketch, engine.PartialFunc) (sketch.Result, error) {
		if bad {
			panic("injected handler panic")
		}
		return int64(7), nil
	}}
	s := New(run, Config{MaxInFlight: 1, Deadline: -1})

	_, err := s.RunSketch(context.Background(), "d", uncacheableSketch(1), nil)
	var pe *engine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *engine.PanicError", err)
	}
	if got := HTTPStatus(err); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus = %d, want 500", got)
	}
	bad = false
	// The single slot must have been released despite the panic.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if res, err := s.RunSketch(context.Background(), "d", uncacheableSketch(1), nil); err != nil || res != sketch.Result(int64(7)) {
			t.Errorf("query after panic: res=%v err=%v", res, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slot leaked by panicking query")
	}
	if st := s.Stats(); st.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}
}

// TestResultBudget pins resource governance: an oversized table page is
// rejected up front with ErrResultBudget (413), without executing.
func TestResultBudget(t *testing.T) {
	run := &fakeRunner{fn: func(context.Context, string, sketch.Sketch, engine.PartialFunc) (sketch.Result, error) {
		return int64(1), nil
	}}
	s := New(run, Config{MaxResultRows: 100, Deadline: -1})
	_, err := s.RunSketch(context.Background(), "d", uncacheableSketch(101), nil)
	if !errors.Is(err, ErrResultBudget) {
		t.Fatalf("err = %v, want ErrResultBudget", err)
	}
	if got := HTTPStatus(err); got != http.StatusRequestEntityTooLarge {
		t.Errorf("HTTPStatus = %d, want 413", got)
	}
	if run.calls.Load() != 0 {
		t.Error("budget-rejected query executed anyway")
	}
	if _, err := s.RunSketch(context.Background(), "d", uncacheableSketch(100), nil); err != nil {
		t.Errorf("at-budget query rejected: %v", err)
	}
}

// TestAbandonedFlightCancelled: when every subscriber of a shared
// execution disconnects, the execution's context is cancelled so the
// engine stops scanning, and a later identical query starts fresh.
func TestAbandonedFlightCancelled(t *testing.T) {
	execCtx := make(chan context.Context, 2)
	run := &fakeRunner{fn: func(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		execCtx <- ctx
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	s := New(run, Config{MaxInFlight: 2, Deadline: -1})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.RunSketch(ctx, "d", cacheableSketch(), nil)
		errc <- err
	}()
	fctx := <-execCtx
	cancel() // the only subscriber leaves
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("subscriber err = %v, want Canceled", err)
	}
	select {
	case <-fctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("flight context not cancelled after last subscriber left")
	}
	// A later identical query must not join the dead flight.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	go func() {
		fc := <-execCtx
		_ = fc // second execution started — unblock it via ctx2 timeout? No: finish promptly.
	}()
	// Make the second execution return immediately.
	run.fn = func(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		execCtx <- ctx
		return int64(9), nil
	}
	res, err := s.RunSketch(ctx2, "d", cacheableSketch(), nil)
	if err != nil || res != sketch.Result(int64(9)) {
		t.Fatalf("fresh query after abandoned flight: res=%v err=%v", res, err)
	}
	if got := run.calls.Load(); got != 2 {
		t.Errorf("underlying executions = %d, want 2 (no join on dead flight)", got)
	}
}

// TestHTTPStatusContract pins the full typed error → status mapping.
func TestHTTPStatusContract(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{ErrShed, 429},
		{fmt.Errorf("wrapped: %w", ErrShed), 429},
		{fmt.Errorf("%w: %w", ErrQueueTimeout, context.DeadlineExceeded), 503},
		{ErrResultBudget, 413},
		{context.DeadlineExceeded, 504},
		{context.Canceled, StatusClientClosedRequest},
		{&engine.PanicError{Value: "x"}, 500},
		{errors.New("no such column"), 400},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestWriteErrorRetryAfter: overload statuses carry a Retry-After hint.
func TestWriteErrorRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, ErrShed, 2*time.Second)
	if rec.Code != 429 {
		t.Fatalf("code = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	rec = httptest.NewRecorder()
	WriteError(rec, errors.New("bad column"), time.Second)
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("Retry-After on 400 = %q, want unset", got)
	}
}

// TestRecoveredMiddleware: a panic in a render handler becomes that
// request's 500 and is counted.
func TestRecoveredMiddleware(t *testing.T) {
	s := New(&fakeRunner{}, Config{})
	h := s.Recovered(func(w http.ResponseWriter, r *http.Request) {
		panic("render bug")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "render bug") {
		t.Errorf("body %q does not name the panic", rec.Body.String())
	}
	if st := s.Stats(); st.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}
}

// strictWriter fails the test on a second WriteHeader, which net/http
// would only log ("superfluous response.WriteHeader call").
type strictWriter struct {
	*httptest.ResponseRecorder
	t       *testing.T
	headers int
}

func (w *strictWriter) WriteHeader(code int) {
	w.headers++
	if w.headers > 1 {
		w.t.Errorf("WriteHeader called %d times", w.headers)
	}
	w.ResponseRecorder.WriteHeader(code)
}

// TestRecoveredAfterResponseStarted pins the double-write regression: a
// panic after the handler has begun its response must be counted but
// must NOT write a second status line or append an error body to a
// stream the client already consumed as a 200.
func TestRecoveredAfterResponseStarted(t *testing.T) {
	s := New(&fakeRunner{}, Config{})
	h := s.Recovered(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial payload"))
		panic("render bug mid-stream")
	})
	rec := &strictWriter{ResponseRecorder: httptest.NewRecorder(), t: t}
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d, want the already-sent 200", rec.Code)
	}
	if got := rec.Body.String(); got != "partial payload" {
		t.Errorf("body = %q; error text appended after the response started", got)
	}
	if st := s.Stats(); st.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}
}

// TestRecoveredUsesTypedErrorPath: the clean-panic 500 goes through
// WriteError, the one typed-error path every handler response takes
// (the old path called raw http.Error, bypassing the contract).
func TestRecoveredUsesTypedErrorPath(t *testing.T) {
	s := New(&fakeRunner{}, Config{})
	h := s.Recovered(func(w http.ResponseWriter, r *http.Request) {
		panic("early bug") // nothing written yet: full 500 owed
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "early bug") {
		t.Errorf("body %q does not name the panic", rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("Retry-After on a 500 = %q, want unset", got)
	}
}

// TestRecoveredFlushPassthrough: wrapping must not hide the underlying
// writer's http.Flusher from streaming handlers.
func TestRecoveredFlushPassthrough(t *testing.T) {
	s := New(&fakeRunner{}, Config{})
	flushed := false
	h := s.Recovered(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		w.Write([]byte("x"))
		f.Flush()
		flushed = true
	})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !flushed {
		t.Error("handler never reached Flush")
	}
}
