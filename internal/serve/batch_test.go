package serve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/table"
)

// dsRunner runs sketches against one real LocalDataSet, counting leaf
// passes; the count is the "one scan per batch" oracle.
type dsRunner struct {
	ds    *engine.LocalDataSet
	calls int64
	mu    sync.Mutex
}

func (r *dsRunner) RunSketch(ctx context.Context, _ string, sk sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error) {
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
	return r.ds.Sketch(ctx, sk, onPartial)
}

func (r *dsRunner) count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// batchFixture builds a small real dataset plus K distinct cacheable
// sketches over it and their solo ground-truth results.
func batchFixture(t testing.TB, k int) (*dsRunner, []sketch.Sketch, []sketch.Result) {
	t.Helper()
	parts, info := table.GenPartitions("bt", 11, 1200, 3)
	ds := engine.NewLocal("d", parts, engine.Config{Parallelism: 2, AggregationWindow: -1, ChunkRows: 256, StaticAssignment: true})
	sks := make([]sketch.Sketch, k)
	want := make([]sketch.Result, k)
	for i := range sks {
		switch i % 3 {
		case 0:
			sks[i] = &sketch.HistogramSketch{Col: "gd", Buckets: sketch.NumericBuckets(table.KindDouble, info.DoubleLo, info.DoubleHi, 4+i)}
		case 1:
			sks[i] = &sketch.RangeSketch{Col: []string{"gd", "gi", "gt"}[(i/3)%3]}
		default:
			sks[i] = &sketch.MisraGriesSketch{Col: "gs", K: 4 + i}
		}
		var err error
		want[i], err = ds.Sketch(context.Background(), sks[i], nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	return &dsRunner{ds: ds}, sks, want
}

// TestBatchCoalescesDistinctQueries is the tentpole contract: K
// distinct cacheable queries arriving within one window execute as a
// single underlying scan, and every subscriber's result is bit-identical
// to its solo run.
func TestBatchCoalescesDistinctQueries(t *testing.T) {
	const k = 4
	run, sks, want := batchFixture(t, k)
	s := New(run, Config{MaxInFlight: k, Deadline: -1, BatchWindow: 500 * time.Millisecond})

	got := make([]sketch.Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.RunSketch(context.Background(), "d", sks[i], nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("member %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("member %d (%s): batched result differs from solo run", i, sks[i].Name())
		}
	}
	if n := run.count(); n != 1 {
		t.Errorf("underlying scans = %d, want 1", n)
	}
	st := s.Stats()
	if st.BatchesFormed != 1 || st.BatchMembers != k || st.ScansSaved != k-1 {
		t.Errorf("stats = formed %d members %d saved %d, want 1/%d/%d", st.BatchesFormed, st.BatchMembers, st.ScansSaved, k, k-1)
	}
}

// TestBatchDemuxesPartials: each batch subscriber's partial stream must
// carry only its own sketch's summary type, with monotone progress and
// the final partial equal to its returned result.
func TestBatchDemuxesPartials(t *testing.T) {
	parts, info := table.GenPartitions("bp", 13, 1500, 3)
	ds := engine.NewLocal("d", parts, engine.Config{Parallelism: 2, AggregationWindow: time.Nanosecond, ChunkRows: 128, StaticAssignment: true})
	run := &dsRunner{ds: ds}
	hist := &sketch.HistogramSketch{Col: "gd", Buckets: sketch.NumericBuckets(table.KindDouble, info.DoubleLo, info.DoubleHi, 6)}
	rng := &sketch.RangeSketch{Col: "gi"}
	s := New(run, Config{MaxInFlight: 2, Deadline: -1, BatchWindow: 500 * time.Millisecond})

	type stream struct {
		mu  sync.Mutex
		ps  []engine.Partial
		res sketch.Result
		err error
	}
	streams := [2]*stream{{}, {}}
	var wg sync.WaitGroup
	for i, sk := range []sketch.Sketch{hist, rng} {
		wg.Add(1)
		go func(i int, sk sketch.Sketch) {
			defer wg.Done()
			st := streams[i]
			st.res, st.err = s.RunSketch(context.Background(), "d", sk, func(p engine.Partial) {
				st.mu.Lock()
				st.ps = append(st.ps, p)
				st.mu.Unlock()
			})
		}(i, sk)
	}
	wg.Wait()
	for i, st := range streams {
		if st.err != nil {
			t.Fatalf("member %d: %v", i, st.err)
		}
		if len(st.ps) == 0 {
			t.Fatalf("member %d: no partials", i)
		}
		prev := 0
		for j, p := range st.ps {
			if i == 0 {
				if _, ok := p.Result.(*sketch.Histogram); !ok {
					t.Fatalf("member 0 partial %d is %T, want *sketch.Histogram", j, p.Result)
				}
			} else {
				if _, ok := p.Result.(*sketch.DataRange); !ok {
					t.Fatalf("member 1 partial %d is %T, want *sketch.DataRange", j, p.Result)
				}
			}
			if p.Done < prev {
				t.Errorf("member %d: Done regressed %d -> %d", i, prev, p.Done)
			}
			prev = p.Done
		}
		last := st.ps[len(st.ps)-1]
		if last.Done != last.Total {
			t.Errorf("member %d: stream did not end with the completion partial", i)
		}
		if !reflect.DeepEqual(last.Result, st.res) {
			t.Errorf("member %d: final partial differs from returned result", i)
		}
	}
	if n := run.count(); n != 1 {
		t.Errorf("underlying scans = %d, want 1", n)
	}
}

// TestBatchMemberCancellation: cancelling one member's context mid-scan
// fails only that member; the batch keeps running and the surviving
// members' results stay bit-identical to their solo runs.
func TestBatchMemberCancellation(t *testing.T) {
	run, sks, want := batchFixture(t, 3)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	gated := &fakeRunner{fn: func(ctx context.Context, d string, sk sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return run.RunSketch(ctx, d, sk, onPartial)
	}}
	s := New(gated, Config{MaxInFlight: 3, Deadline: -1, BatchWindow: 200 * time.Millisecond})

	ctx0, cancel0 := context.WithCancel(context.Background())
	defer cancel0()
	got := make([]sketch.Result, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i == 0 {
				ctx = ctx0
			}
			got[i], errs[i] = s.RunSketch(ctx, "d", sks[i], nil)
		}(i)
	}
	<-started // the batch has formed and begun executing
	cancel0()
	// Member 0 must return promptly with its own cancellation while the
	// batch is still gated.
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.flights)
		s.mu.Unlock()
		if n == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("cancelled member never detached")
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	wg.Wait()

	if !errors.Is(errs[0], context.Canceled) {
		t.Errorf("cancelled member err = %v, want context.Canceled", errs[0])
	}
	for i := 1; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("surviving member %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("surviving member %d: result differs from solo run", i)
		}
	}
	st := s.Stats()
	if st.BatchesFormed != 1 || st.BatchMembers != 3 {
		t.Errorf("stats = formed %d members %d, want 1/3", st.BatchesFormed, st.BatchMembers)
	}
}

// TestBatchAllMembersCancelled: when every member abandons the batch,
// the shared execution's context is cancelled — the scan does not keep
// burning cores for an audience of zero.
func TestBatchAllMembersCancelled(t *testing.T) {
	_, sks, _ := batchFixture(t, 2)
	execCancelled := make(chan struct{})
	started := make(chan struct{}, 1)
	gated := &fakeRunner{fn: func(ctx context.Context, _ string, _ sketch.Sketch, _ engine.PartialFunc) (sketch.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		close(execCancelled)
		return nil, ctx.Err()
	}}
	s := New(gated, Config{MaxInFlight: 2, Deadline: -1, BatchWindow: 100 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.RunSketch(ctx, "d", sks[i], nil)
		}(i)
	}
	<-started
	cancel()
	wg.Wait()
	select {
	case <-execCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("batch execution not cancelled after every member left")
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("member %d err = %v, want context.Canceled", i, err)
		}
	}
}

// TestBatchDedupJoins: identical queries inside one window share a
// member instead of adding one, and both subscribers get the result.
func TestBatchDedupJoins(t *testing.T) {
	run, sks, want := batchFixture(t, 2)
	s := New(run, Config{MaxInFlight: 4, Deadline: -1, BatchWindow: 500 * time.Millisecond})

	got := make([]sketch.Result, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, sk := range []sketch.Sketch{sks[0], sks[1], sks[0]} {
		wg.Add(1)
		go func(i int, sk sketch.Sketch) {
			defer wg.Done()
			got[i], errs[i] = s.RunSketch(context.Background(), "d", sk, nil)
		}(i, sk)
	}
	wg.Wait()
	for i, wanti := range []sketch.Result{want[0], want[1], want[0]} {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], wanti) {
			t.Errorf("query %d: result differs from solo run", i)
		}
	}
	st := s.Stats()
	if st.DedupJoins != 1 {
		t.Errorf("dedup joins = %d, want 1", st.DedupJoins)
	}
	if st.BatchMembers != 2 {
		t.Errorf("batch members = %d, want 2 (identical queries share one member)", st.BatchMembers)
	}
	if n := run.count(); n != 1 {
		t.Errorf("underlying scans = %d, want 1", n)
	}
}

// TestBatchSingletonRunsSolo: a window that closes with one member must
// execute exactly the pre-batching solo path — the runner sees the
// original sketch, not a MultiSketch, and no batch is counted.
func TestBatchSingletonRunsSolo(t *testing.T) {
	run, sks, want := batchFixture(t, 1)
	var seen sketch.Sketch
	spy := &fakeRunner{fn: func(ctx context.Context, d string, sk sketch.Sketch, onPartial engine.PartialFunc) (sketch.Result, error) {
		seen = sk
		return run.RunSketch(ctx, d, sk, onPartial)
	}}
	s := New(spy, Config{MaxInFlight: 2, Deadline: -1, BatchWindow: 20 * time.Millisecond})
	got, err := s.RunSketch(context.Background(), "d", sks[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[0]) {
		t.Error("singleton result differs from solo run")
	}
	if _, ok := seen.(*sketch.MultiSketch); ok {
		t.Error("singleton window wrapped the sketch in a MultiSketch")
	}
	if st := s.Stats(); st.BatchesFormed != 0 || st.ScansSaved != 0 {
		t.Errorf("stats = formed %d saved %d, want 0/0", st.BatchesFormed, st.ScansSaved)
	}
}

// TestBatchWindowZeroIsTodaysBehavior: with BatchWindow 0 the batching
// layer is inert — distinct queries execute independently and no batch
// telemetry moves.
func TestBatchWindowZeroIsTodaysBehavior(t *testing.T) {
	run, sks, want := batchFixture(t, 2)
	s := New(run, Config{MaxInFlight: 2, Deadline: -1})
	got := make([]sketch.Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.RunSketch(context.Background(), "d", sks[i], nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("query %d: result differs", i)
		}
	}
	if n := run.count(); n != 2 {
		t.Errorf("underlying scans = %d, want 2", n)
	}
	if st := s.Stats(); st.BatchesFormed != 0 || st.BatchMembers != 0 || st.ScansSaved != 0 {
		t.Errorf("batch telemetry moved with batching disabled: %+v", st)
	}
}
