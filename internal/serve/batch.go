package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sketch"
)

// Scan batching. A cacheable query that cannot dedup-join an identical
// in-flight execution registers its flight and waits: the first such
// arrival on a dataset opens a Config.BatchWindow timer, and when it
// fires every flight gathered on that dataset runs as one
// sketch.MultiSketch — a single admission slot, a single leaf pass over
// the table with the member sketches' column unions acquired once per
// chunk. Each member's partials and final result are demuxed out of the
// composite, so a subscriber cannot tell (by the bits it receives)
// whether its query ran solo or batched: the batch shares the solo
// path's chunk geometry, per-chunk sampling seeds, and merge order.
//
// Tradeoff: MultiSketch is deliberately not Cacheable, so batched
// members bypass the root's computation cache. Batching targets the
// concurrent-dashboard load where every query is fresh; a recurring
// single query still takes the solo path's cache when the window is
// off, and the cache's keys stay per-member either way.

// pendingBatch collects flights on one dataset while its window is
// open. Guarded by Scheduler.mu.
type pendingBatch struct {
	flights  []*flight
	sketches []sketch.Sketch
}

// batchExec is one formed batch: the MultiSketch execution shared by
// its member flights. members/mask/live are fixed at formation; live is
// decremented under Scheduler.mu as members are abandoned.
type batchExec struct {
	ctx     context.Context
	cancel  context.CancelFunc
	members []*flight
	mask    *sketch.MemberMask
	live    int
}

// joinBatch subscribes a cacheable query to its dataset's open batching
// window, dedup-joining an existing flight for the same key when one is
// already registered (pending or executing). batchID is the
// generation-qualified dataset identity the window gathers under — two
// queries may share a scan only when they scan the same live set;
// datasetID is the bare ID the execution runs against.
func (s *Scheduler) joinBatch(tr *obs.Trace, key, batchID, datasetID string, sk sketch.Sketch, onPartial engine.PartialFunc) (*flight, *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fl := s.flights[key]; fl != nil {
		s.dedups.Add(1)
		tr.Annotate("serve.dedup_join", "")
		return fl, fl.subscribe(onPartial)
	}
	fl := s.newFlight(key)
	if tr != nil {
		fl.tr = tr
		fl.ctx = obs.WithTrace(fl.ctx, tr)
		fl.bwin = tr.StartSpan("serve.batch_window")
	}
	sub := fl.subscribe(onPartial)
	b := s.batches[batchID]
	if b == nil {
		b = &pendingBatch{}
		s.batches[batchID] = b
		time.AfterFunc(s.cfg.BatchWindow, func() { s.formBatch(batchID, datasetID, b) })
	}
	b.flights = append(b.flights, fl)
	b.sketches = append(b.sketches, sk)
	return fl, sub
}

// formBatch closes a window and launches the gathered flights: solo
// when one remains, as a MultiSketch otherwise.
func (s *Scheduler) formBatch(batchID, datasetID string, b *pendingBatch) {
	s.mu.Lock()
	if s.batches[batchID] == b {
		delete(s.batches, batchID)
	}
	// A flight abandoned before formation was already unregistered and
	// cancelled by wait (its batch field was still nil); drop it here so
	// the scan does not pay for a query nobody is waiting on.
	var (
		alive []*flight
		sks   []sketch.Sketch
	)
	for i, fl := range b.flights {
		if len(fl.subs) > 0 {
			alive = append(alive, fl)
			sks = append(sks, b.sketches[i])
		}
	}
	for _, fl := range alive {
		fl.bwin.EndNote(fmt.Sprintf("members=%d", len(alive)))
	}
	switch len(alive) {
	case 0:
		s.mu.Unlock()
		return
	case 1:
		// A batch of one is exactly a solo single-flight execution.
		s.mu.Unlock()
		go s.runFlight(alive[0], datasetID, sks[0])
		return
	}
	multi, err := sketch.NewMultiSketch(sks...)
	if err != nil {
		// Cannot compose (should be unreachable: WholePartition and
		// nested multis never reach joinBatch) — fail every member with
		// the composition error rather than wedging their waiters.
		for _, fl := range alive {
			fl.err = fmt.Errorf("serve: batch formation: %w", err)
			fl.finished = true
			if !fl.removed {
				delete(s.flights, fl.key)
				fl.removed = true
			}
			close(fl.done)
			fl.cancel()
		}
		s.mu.Unlock()
		return
	}
	mask := sketch.NewMemberMask(len(alive))
	multi.SetMask(mask)
	bctx, bcancel := context.WithCancel(context.Background())
	if s.cfg.Deadline > 0 {
		bctx, bcancel = context.WithTimeout(context.Background(), s.cfg.Deadline)
	}
	// The composite execution records its spans into the first traced
	// member's trace (one scan, one owner); the rest keep their
	// batch_window span as the record of having ridden along.
	for _, fl := range alive {
		if fl.tr != nil {
			bctx = obs.WithTrace(bctx, fl.tr)
			break
		}
	}
	be := &batchExec{ctx: bctx, cancel: bcancel, members: alive, mask: mask, live: len(alive)}
	for i, fl := range alive {
		fl.batch = be
		fl.memberIdx = i
	}
	s.batchesFormed.Add(1)
	s.batchMembers.Add(int64(len(alive)))
	s.scansSaved.Add(int64(len(alive) - 1))
	s.mu.Unlock()
	go s.runBatch(be, datasetID, multi)
}

// runBatch executes the composite query under one admission slot and
// demuxes the outcome to every member flight.
func (s *Scheduler) runBatch(be *batchExec, datasetID string, multi *sketch.MultiSketch) {
	defer be.cancel()
	res, err := s.execute(be.ctx, datasetID, multi, be.fanout(s))
	mr, ok := res.(*sketch.MultiResult)
	if err == nil && (!ok || len(mr.Members) != len(be.members)) {
		err = fmt.Errorf("serve: batch execution returned %T for %d members", res, len(be.members))
	}
	s.mu.Lock()
	for i, fl := range be.members {
		if err != nil {
			fl.err = err
		} else {
			fl.res = mr.Members[i]
		}
		fl.finished = true
		if !fl.removed {
			delete(s.flights, fl.key)
			fl.removed = true
		}
	}
	s.mu.Unlock()
	for _, fl := range be.members {
		close(fl.done)
		fl.cancel()
	}
}

// fanout builds the batch's partial callback: each composite partial is
// split member-wise and delivered to that member's subscribers, so a
// subscriber's stream carries only its own sketch's summaries.
func (be *batchExec) fanout(s *Scheduler) engine.PartialFunc {
	type delivery struct {
		sub *subscriber
		p   engine.Partial
	}
	return func(p engine.Partial) {
		mr, ok := p.Result.(*sketch.MultiResult)
		if !ok || len(mr.Members) != len(be.members) {
			return
		}
		var out []delivery
		s.mu.Lock()
		for i, fl := range be.members {
			for _, sub := range fl.subs {
				out = append(out, delivery{sub, engine.Partial{Result: mr.Members[i], Done: p.Done, Total: p.Total}})
			}
		}
		s.mu.Unlock()
		for _, d := range out {
			d.sub.deliver(d.p)
		}
	}
}
