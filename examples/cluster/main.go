// Cluster: a three-worker Hillview deployment on loopback TCP showing
// the distributed execution tree (Fig 1): progressive partial results
// arriving at the root, byte accounting, and failure recovery — a
// worker "crashes" (loses its soft state) and the redo log rebuilds it
// mid-session.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/render"
	"repro/internal/sketch"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
)

func main() {
	flights.Register()
	cfg := engine.Config{Parallelism: 4, AggregationWindow: 20 * time.Millisecond}

	// Boot three workers (in production these are separate machines
	// running cmd/hillview-worker).
	var addrs []string
	var workers []*cluster.Worker
	for i := 0; i < 3; i++ {
		w := cluster.NewWorker(storage.NewLoader(cfg, 0))
		addr, err := w.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
		fmt.Printf("worker %d listening on %s\n", i, addr)
	}
	c, err := cluster.Connect(addrs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// The root: redo log + computation cache over the cluster loader.
	sheet := spreadsheet.New(engine.NewRoot(c.Loader()))
	// {worker} expands per worker: each generates (in production: reads)
	// its own shard.
	view, err := sheet.Load(context.Background(), "flights", "flights:rows=400000,parts=16,seed=90{worker}")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloaded %d rows across %d workers\n\n", view.NumRows(), len(addrs))

	// A histogram with progressive updates: watch partials stream in.
	fmt.Println("— histogram with progressive partials —")
	start := time.Now()
	hv, err := view.Histogram(context.Background(), "DepDelay", spreadsheet.ChartOptions{
		Bars: 30,
		OnPartial: func(p engine.Partial) {
			if h, ok := p.Result.(*sketch.Histogram); ok {
				fmt.Printf("  +%6.1fms  %2d/%2d leaves  %7d sampled rows\n",
					float64(time.Since(start).Microseconds())/1000, p.Done, p.Total, h.SampledRows)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final after %.1fms; root received %d KB total this session\n\n",
		float64(time.Since(start).Microseconds())/1000, c.BytesReceived()/1024)
	fmt.Println(render.HistogramASCII(hv.Hist, 60, 10))

	// Derive a filtered view — the map op runs on every worker.
	west, err := view.FilterExpr(context.Background(), `OriginState == "CA" || OriginState == "WA" || OriginState == "OR"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("west-coast departures: %d rows\n\n", west.NumRows())

	// Crash worker 1: all its soft state vanishes.
	fmt.Println("— simulating worker restart (soft state lost) —")
	workers[1].DropAll()

	// The next query hits the missing dataset; the root replays the
	// redo log (reload + filter) transparently and answers anyway.
	hh, err := west.HeavyHitters(context.Background(), "Origin", 8, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered after replay (replays so far: %d)\n", sheet.Root().Replays())
	fmt.Println(render.HeavyHittersASCII(hh, west.NumRows()))

	for _, w := range workers {
		w.Close()
	}
}
