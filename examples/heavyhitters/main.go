// Heavyhitters: log-exploration workflow — the "which server is
// misbehaving" scenario from the paper's introduction. A synthetic
// service log (timestamp, server, level, latency, message) is scanned
// with heavy hitters, free-text search, filtering, and a trellis of
// heat maps, then the suspicious slice is exported as CSV.
//
//	go run ./examples/heavyhitters
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/render"
	"repro/internal/sketch"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
	"repro/internal/table"
)

// genLog writes a synthetic service log: server "gandalf" is the
// misbehaving needle (over-represented and slow).
func genLog(path string, n int) error {
	schema := table.NewSchema(
		table.ColumnDesc{Name: "ts", Kind: table.KindInt},
		table.ColumnDesc{Name: "server", Kind: table.KindString},
		table.ColumnDesc{Name: "level", Kind: table.KindString},
		table.ColumnDesc{Name: "latency_ms", Kind: table.KindDouble},
		table.ColumnDesc{Name: "message", Kind: table.KindString},
	)
	servers := []string{"frodo", "sam", "merry", "pippin", "aragorn", "legolas", "gimli", "boromir"}
	msgs := []string{"request served", "cache miss", "retry scheduled", "connection reset by peer", "slow query detected"}
	rng := rand.New(rand.NewPCG(7, 11))
	b := table.NewBuilder(schema, n)
	for i := 0; i < n; i++ {
		server := servers[rng.IntN(len(servers))]
		level := "INFO"
		latency := rng.ExpFloat64() * 20
		if rng.Float64() < 0.15 { // the needle
			server = "gandalf"
			latency = 200 + rng.ExpFloat64()*300
			if rng.Float64() < 0.4 {
				level = "ERROR"
			}
		} else if rng.Float64() < 0.02 {
			level = "WARN"
		}
		b.AppendRow(table.Row{
			table.IntValue(int64(1700000000 + i)),
			table.StringValue(server),
			table.StringValue(level),
			table.DoubleValue(latency),
			table.StringValue(msgs[rng.IntN(len(msgs))]),
		})
	}
	return storage.WriteCSV(path, b.Freeze("log"))
}

func main() {
	dir, err := os.MkdirTemp("", "hillview-logs")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "service.csv")
	if err := genLog(path, 300000); err != nil {
		log.Fatal(err)
	}

	sheet := spreadsheet.New(engine.NewRoot(storage.NewLoader(engine.Config{}, 50000)))
	view, err := sheet.Load(context.Background(), "log", "file:"+path)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("log: %d rows\n\n", view.NumRows())

	// Step 1: who produces the most log lines?
	fmt.Println("— heavy hitters over servers —")
	hh, err := view.HeavyHitters(ctx, "server", 10, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(render.HeavyHittersASCII(hh, view.NumRows()))

	// Step 2: find the first ERROR from the suspect (free-text search).
	suspect := hh[0].Value.S
	res, err := view.Find(ctx, "level", "ERROR", sketch.MatchExact, true,
		table.Asc("ts"), []string{"server", "latency_ms", "message"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if res.Match != nil {
		fmt.Printf("first ERROR at ts=%s on %s (%s ms): %q — %d matches total\n\n",
			res.Match[0].String(), res.Match[1].String(), res.Match[2].String(), res.Match[3].S, res.MatchesAfter)
	}

	// Step 3: isolate the suspect and compare latency distributions.
	sv, err := view.FilterExpr(ctx, fmt.Sprintf("server == %q", suspect))
	if err != nil {
		log.Fatal(err)
	}
	rest, err := view.FilterExpr(ctx, fmt.Sprintf("server != %q", suspect))
	if err != nil {
		log.Fatal(err)
	}
	for name, v := range map[string]*spreadsheet.View{suspect: sv, "others": rest} {
		m, err := v.ColumnSummary(ctx, "latency_ms")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %s", name, render.MomentsASCII("latency_ms", m))
	}

	// Step 4: latency histogram of the suspect.
	hv, err := sv.Histogram(ctx, "latency_ms", spreadsheet.ChartOptions{Bars: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— %s latency distribution —\n", suspect)
	fmt.Println(render.HistogramASCII(hv.Hist, 60, 10))

	// Step 5: export the suspicious slice for the next pipeline stage
	// (paper §2: Hillview sits inside a larger analytics pipeline).
	outDir := filepath.Join(dir, "suspect")
	if err := sv.SaveCSV(ctx, outDir); err != nil {
		log.Fatal(err)
	}
	files, _ := os.ReadDir(outDir)
	fmt.Printf("exported %d rows to %s (%d files)\n", sv.NumRows(), outDir, len(files))
}
