// Flights: an analyst session over the synthetic airline dataset,
// answering questions in the style of the paper's case study (Fig 10):
// which carrier is most delayed, how do delays distribute, what do
// delay × distance look like together, and which airports dominate.
//
//	go run ./examples/flights [-rows 500000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/render"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
	"repro/internal/table"
)

func main() {
	rows := flag.Int("rows", 500000, "rows to generate")
	flag.Parse()
	flights.Register()

	root := engine.NewRoot(storage.NewLoader(engine.Config{}, 0))
	sheet := spreadsheet.New(root)
	view, err := sheet.Load(context.Background(), "flights", fmt.Sprintf("flights:rows=%d,parts=16,seed=2026", *rows))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("flights: %d rows × %d columns\n\n", view.NumRows(), view.Schema().NumColumns())

	// Q: which carriers dominate, and how late are they?
	fmt.Println("— busiest carriers (Misra–Gries heavy hitters) —")
	hh, err := view.HeavyHitters(ctx, "Carrier", 10, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(render.HeavyHittersASCII(hh, view.NumRows()))

	for _, carrier := range []string{hh[0].Value.S, hh[1].Value.S} {
		f, err := view.FilterExpr(ctx, fmt.Sprintf("Carrier == %q", carrier))
		if err != nil {
			log.Fatal(err)
		}
		m, err := f.ColumnSummary(ctx, "DepDelay")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s", carrier, render.MomentsASCII("DepDelay", m))
	}

	// Q: how do departure delays distribute?
	fmt.Println("\n— departure delay histogram + CDF —")
	hv, err := view.Histogram(ctx, "DepDelay", spreadsheet.ChartOptions{Bars: 40, WithCDF: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(render.HistogramASCII(hv.Hist, 80, 12))

	// Q: zoom into the troublesome tail.
	fmt.Println("— zoom: delays above one hour —")
	late, err := view.Zoom(ctx, "DepDelay", 60, hv.Range.Max)
	if err != nil {
		log.Fatal(err)
	}
	lhv, err := late.Histogram(ctx, "DepDelay", spreadsheet.ChartOptions{Bars: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d flights delayed > 60 min\n", late.NumRows())
	fmt.Println(render.HistogramASCII(lhv.Hist, 60, 8))

	// Q: does delay correlate with distance? (heat map)
	fmt.Println("— delay × distance heat map —")
	hm, err := view.Heatmap(ctx, "Distance", "DepDelay", spreadsheet.ChartOptions{Width: 180, Height: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(render.HeatmapASCII(hm.Result))

	// Q: derive a new column with the expression language.
	fmt.Println("— derived column: schedule slack (ArrDelay - DepDelay) —")
	derived, err := view.DeriveColumn(ctx, "Slack", "ArrDelay - DepDelay")
	if err != nil {
		log.Fatal(err)
	}
	sm, err := derived.ColumnSummary(ctx, "Slack")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(render.MomentsASCII("Slack", sm))

	// Q: the worst flights, as a sorted table page.
	fmt.Println("\n— ten most delayed flights —")
	page, err := view.TableView(ctx, table.Desc("DepDelay"), []string{"Carrier", "Origin", "Dest", "FlightDate"}, 10, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(render.TableASCII(page, []string{"DepDelay", "Carrier", "Origin", "Dest", "FlightDate"}))
}
