// Quickstart: load a CSV file, page through it sorted, and draw a
// histogram with a CDF overlay — the minimal Hillview session.
//
//	go run ./examples/quickstart [file.csv]
//
// Without an argument it writes and uses a small sample file.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/render"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
	"repro/internal/table"
)

func main() {
	path := sampleCSV()
	if len(os.Args) > 1 {
		path = os.Args[1]
	}

	// The stack: storage loader → engine root → spreadsheet session.
	root := engine.NewRoot(storage.NewLoader(engine.Config{}, 0))
	sheet := spreadsheet.New(root)
	view, err := sheet.Load(context.Background(), "data", "file:"+path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d rows, schema: %s\n\n", path, view.NumRows(), view.Schema())

	ctx := context.Background()

	// A sorted tabular page (duplicates aggregate into counts).
	first := view.Schema().Columns[0].Name
	page, err := view.TableView(ctx, table.Asc(first), restOf(view), 10, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(render.TableASCII(page, view.Schema().Names()))

	// A histogram + CDF of the first numeric column.
	for _, cd := range view.Schema().Columns {
		if !cd.Kind.Numeric() {
			continue
		}
		hv, err := view.Histogram(ctx, cd.Name, spreadsheet.ChartOptions{Bars: 30, WithCDF: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("histogram of %s (sample rate %.3g):\n", cd.Name, hv.Hist.SampleRate)
		fmt.Println(render.HistogramASCII(hv.Hist, 60, 12))
		break
	}
}

// restOf lists the non-leading columns for the table view.
func restOf(v *spreadsheet.View) []string {
	names := v.Schema().Names()
	if len(names) <= 1 {
		return nil
	}
	return names[1:]
}

// sampleCSV writes a small demo file next to the binary's temp space.
func sampleCSV() string {
	dir, err := os.MkdirTemp("", "hillview-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "cities.csv")
	data := `city,population,area
tokyo,37400068,2194
delhi,29399141,1484
shanghai,26317104,6341
sao paulo,21846507,1521
mexico city,21671908,1485
cairo,20484965,3085
dhaka,20283552,306
mumbai,20185064,603
beijing,20035455,16411
osaka,19222665,225
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		log.Fatal(err)
	}
	return path
}
