// Package repro is a from-scratch Go reproduction of Hillview (Budiu et
// al., "Hillview: A trillion-cell spreadsheet for big data", VLDB 2019):
// a distributed spreadsheet built on vizketches — mergeable summaries
// whose precision derives from the display resolution — and a
// specialized execution engine that runs them over trees of workers
// with progressive results, computation caching, and redo-log fault
// tolerance.
//
// The public surface lives in the internal packages (this module is a
// reproduction artifact, not a published library API):
//
//   - internal/table — columnar tables, membership sets, sampling
//   - internal/sketch — the vizketch library
//   - internal/engine — execution trees, caches, redo log
//   - internal/cluster — the TCP worker protocol
//   - internal/spreadsheet — the user-facing operations
//   - internal/bench — the paper's evaluation, regenerated
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate each evaluation artifact at test scale;
// cmd/hillview-bench runs them at configurable scale.
package repro
