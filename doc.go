// Package repro is a from-scratch Go reproduction of Hillview (Budiu et
// al., "Hillview: A trillion-cell spreadsheet for big data", VLDB 2019):
// a distributed spreadsheet built on vizketches — mergeable summaries
// whose precision derives from the display resolution — and a
// specialized execution engine that runs them over trees of workers
// with progressive results, computation caching, and redo-log fault
// tolerance.
//
// The public surface lives in the internal packages (this module is a
// reproduction artifact, not a published library API):
//
//   - internal/table — columnar tables, membership sets, sampling
//   - internal/sketch — the vizketch library
//   - internal/engine — execution trees, caches, redo log
//   - internal/colstore — memory-mapped column store + budgeted pool
//   - internal/cluster — the TCP worker protocol
//   - internal/spreadsheet — the user-facing operations
//   - internal/bench — the paper's evaluation, regenerated
//
// Leaf scans are vectorized end to end ("as fast as the hardware
// allows", paper §6): memberships iterate in spans or bulk-decoded row
// batches, columns expose typed backing storage, sketches run
// kind-specialized batch kernels, and the engine shards oversized
// partitions into fixed row-range chunks. Aggregation is parallel all
// the way up: a pool of leaf workers drains the chunk queue, each
// folding its chunks into a reusable mutable Accumulator
// (sketch.AccumulatorSketch — histogram, hist2d, range, distinct, and
// heavy hitters ship one) or a private Merge fold, and the per-worker
// states combine in a pairwise merge tree, so no chunk result ever
// crosses a shared lock. Progressive partials merge snapshots of every
// worker's state and reach the callback serialized on a dedicated
// emission lock, never blocking the fold path. Heavy
// hitters count dictionary columns by int32 code (dense array or
// code-keyed map) and materialize Values only at result time;
// equi-width buckets index by a precomputed reciprocal whenever the
// multiplication form is verified against the division form at every
// bucket boundary. Batch scans are bit-identical to the retained
// row-at-a-time reference path — including randomized sketches under a
// fixed seed, via per-chunk seeds derived from (seed, chunk start).
// Kernel before/after numbers: BENCH_kernels.json.
//
// Leaf column data is evictable soft state served by a memory-mapped
// column store (internal/colstore; paper §3.5, §5.5, §5.7): the HVC2
// file layout stores fixed-width payloads raw, little-endian, and
// 64-byte aligned with a CRC32-C per block, so mapped blocks
// reinterpret in place as the ordinary typed columns the kernels
// already scan — zero decode, zero copy, zero per-scan allocation. A
// budgeted buffer pool (colstore.Pool) materializes columns lazily on
// first touch, pins them for the duration of a scan task, and evicts
// LRU unpinned columns past a configurable budget (workers:
// -pool-budget / HILLVIEW_POOL_BUDGET), releasing OS pages without
// invalidating the mapping, so datasets much larger than RAM scan
// correctly — the testkit pooled differential runs every shipped
// sketch under a budget of ~25% of the data and demands bit-identical
// results to the fully-heap-loaded path. The engine reaches the store
// through engine.LeafSource (lazy partitions, acquired per chunk task,
// restricted to the columns a sketch declares via sketch.ColumnUser);
// legacy HVC1 files keep working through the decode path and gained a
// CRC32-C footer of their own.
//
// Datasets grow while users watch (internal/ingest): writers append
// row batches into an open segment that seals into an immutable HVC2
// partition through a write-temp → fsync → rename → fsync(dir) →
// manifest-append+fsync protocol whose final step — a CRC32-C-framed
// record in the dataset manifest — is the atomic commit point. Recovery
// replays the manifest, truncates at the first torn record, verifies
// every referenced partition, and removes orphans, so a crash at any
// instant yields a consistent sealed prefix of what was acknowledged.
// Each append bumps a dataset generation counter that qualifies the
// engine's computation cache and the scheduler's dedup/batch keys —
// stale entries are invalidated exactly, unaffected datasets keep
// their cache. Standing queries exploit sketch mergeability: a
// registered sketch re-merges only newly sealed partitions into its
// running result instead of rescanning (ingest.Standing).
// cmd/hillview serves this at /api/ingest and /api/standing
// (-ingest-dir), and both servers drain gracefully on SIGTERM —
// in-flight queries finish under a deadline, open segments seal, late
// requests get a clean retryable error. testkit.RunIngest is the
// correctness net: every append-schedule prefix must be bit-identical
// to a from-scratch run, and a crash-point battery replays truncated
// operation sequences proving recovery never loses an acknowledged
// seal nor resurrects an unacknowledged one.
//
// Correctness is guarded by a deterministic chaos harness
// (internal/testkit): from a single seed it generates randomized
// tables over every column kind, missing mask, dictionary size, and
// membership shape (table.GenPartitions), then pushes every shipped
// sketch through three execution topologies — reference
// Summarize+sequential merge, the parallel accumulator engine (pinned
// reproducible by engine.Config.StaticAssignment), and the real TCP
// cluster path — and asserts agreement under per-sketch oracle
// contracts (sketch.RegisterOracle: exact for deterministic sketches,
// documented error bounds for Misra–Gries and sampling sketches). A
// transport seam (cluster.Transport / cluster.FaultScript) then drives
// the distributed path through scripted frame delays, mid-frame
// stalls, duplicated partials, connection cuts, and worker crash
// mid-sketch: non-destructive faults must be invisible, destructive
// ones must surface as errors — never a hang, never a silently wrong
// answer. Wire-facing decoders (the cluster frame codec, the HVC
// reader) carry fuzz targets with checked-in corpora; malformed input
// errors, never panics. CI runs the harness under -race with rotating
// seeds, and every randomized test logs its seed on failure
// (internal/testkit/seedtest).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate each evaluation artifact at test scale;
// cmd/hillview-bench runs them at configurable scale.
package repro
