// Command hillview-bench regenerates the paper's evaluation artifacts
// (§7): every table and figure has an experiment id. Absolute numbers
// differ from the paper's 8-server testbed — the shapes (who wins, by
// what factor, how curves scale) are the reproduction targets recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	hillview-bench -exp all            # everything, laptop scale
//	hillview-bench -exp fig5 -base 1000000 -workers 8
//	hillview-bench -exp micro -rows 100000000   # paper-scale §7.2.1
//
// Experiments: fig5, fig6, micro, fig7, fig8, fig9, fig11, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5|fig6|micro|fig7|fig8|fig9|fig11|ablate|all")
	base := flag.Int("base", 100000, "1x dataset rows (paper: 130M)")
	cols := flag.Int("cols", 110, "schema width (paper: 110)")
	workers := flag.Int("workers", 4, "worker servers (paper: 8)")
	microRows := flag.Int("rows", 5000000, "rows for the §7.2.1 microbenchmark (paper: 100M)")
	rowsPerLeaf := flag.Int("rowsperleaf", 100000, "rows per leaf for the scaling figures")
	seed := flag.Uint64("seed", 1, "data generator seed")
	sketchDir := flag.String("sketchdir", "internal/sketch", "vizketch source dir for fig9")
	flag.Parse()

	p := bench.DefaultParams()
	p.BaseRows = *base
	p.Cols = *cols
	p.Workers = *workers
	p.Seed = *seed

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("fig5", func() error {
		res, err := bench.RunFig5(p, []int{5, 10, 100}, 5)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("fig6", func() error {
		dir, err := os.MkdirTemp("", "hillview-cold")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		res, err := bench.RunFig6(p, []int{5, 10}, dir)
		if err != nil {
			return err
		}
		res.PrintFig6(os.Stdout)
		return nil
	})
	run("micro", func() error {
		res, err := bench.RunMicro(*microRows, *seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		return nil
	})
	run("fig7", func() error {
		pts, err := bench.RunFig7(*rowsPerLeaf, []int{1, 2, 4, 8, 16, 32, 64}, *seed)
		if err != nil {
			return err
		}
		bench.PrintScale(os.Stdout,
			"Figure 7: scalability in leaf count (shards grow with leaves; flat = ideal)",
			"leaves", pts)
		return nil
	})
	run("fig8", func() error {
		pts, err := bench.RunFig8(p, *rowsPerLeaf/4, 16, []int{1, 2, 3, 4, 5, 6, 7, 8})
		if err != nil {
			return err
		}
		bench.PrintScale(os.Stdout,
			"Figure 8: scalability in servers (data grows with servers; flat = ideal; per-server core budget fixed)",
			"servers", pts)
		return nil
	})
	run("fig9", func() error {
		entries, err := bench.RunFig9(*sketchDir)
		if err != nil {
			return fmt.Errorf("%w (run from the repository root or set -sketchdir)", err)
		}
		bench.PrintFig9(os.Stdout, entries)
		return nil
	})
	run("ablate", func() error {
		wp, err := bench.RunAblateWindow(p, []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, -1})
		if err != nil {
			return err
		}
		bench.PrintWindowAblation(os.Stdout, wp)
		fmt.Println()
		mp, err := bench.RunAblateMicroParts(2000000, []int{10000, 50000, 250000, 1000000, 2000000}, *seed)
		if err != nil {
			return err
		}
		bench.PrintMicroPartAblation(os.Stdout, mp)
		fmt.Println()
		cp, err := bench.RunAblateCrossover([]int{100000, 500000, 2000000, 5000000}, *seed)
		if err != nil {
			return err
		}
		bench.PrintCrossoverAblation(os.Stdout, cp)
		return nil
	})
	run("fig11", func() error {
		root := engine.NewRoot(storage.NewLoader(engine.Config{AggregationWindow: -1}, 0))
		sheet := spreadsheet.New(root)
		view, err := sheet.Load(context.Background(), "flights-1x",
			fmt.Sprintf("flights:rows=%d,parts=8,cols=%d,seed=%d", p.BaseRows, p.Cols, p.Seed))
		if err != nil {
			return err
		}
		results, err := bench.RunFig11(view)
		if err != nil {
			return err
		}
		bench.PrintFig11(os.Stdout, results)
		return nil
	})

	if !strings.Contains("fig5 fig6 micro fig7 fig8 fig9 fig11 ablate all", *exp) {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
