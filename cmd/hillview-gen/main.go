// Command hillview-gen materializes the synthetic flights dataset as
// data files for the storage layer: CSV, JSON lines, or the columnar
// .hvc format — "hvc" for the varint v1 layout, "hvc2" for the
// mmap-native aligned layout the column store serves zero-copy (both
// use the .hvc extension; readers dispatch on the magic). Use it to
// prepare shards for worker machines or cold-start benchmarks
// (Figure 6).
//
// Usage:
//
//	hillview-gen -rows 1000000 -parts 8 -cols 110 -format hvc2 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/flights"
	"repro/internal/storage"
	"repro/internal/table"
)

func main() {
	rows := flag.Int("rows", 1000000, "total rows to generate")
	parts := flag.Int("parts", 8, "number of files (shards)")
	cols := flag.Int("cols", flights.CoreColumns, "schema width (padding columns beyond the core 20)")
	seed := flag.Uint64("seed", 1, "generator seed")
	format := flag.String("format", "hvc2", "output format: csv, jsonl, hvc (v1), or hvc2 (mmap-native)")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("hillview-gen: %v", err)
	}
	write := func(path string, t *table.Table) error {
		switch *format {
		case "csv":
			return storage.WriteCSV(path, t)
		case "jsonl":
			return storage.WriteJSONL(path, t)
		case "hvc":
			return storage.WriteHVC(path, t)
		case "hvc2":
			return storage.WriteHVC2(path, t)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	ext := *format
	if ext == "hvc2" {
		ext = "hvc" // both versions share the extension; readers sniff the magic
	}
	partsList := flights.GenPartitions("flights", *rows, *parts, *seed, *cols)
	total := 0
	for i, t := range partsList {
		path := filepath.Join(*out, fmt.Sprintf("flights-%03d.%s", i, ext))
		if err := write(path, t); err != nil {
			log.Fatalf("hillview-gen: %s: %v", path, err)
		}
		// Generated shards feed worker machines and cold-start
		// benchmarks; sync each so a crash right after "done" cannot
		// leave a torn or empty shard behind.
		if err := storage.SyncFile(path); err != nil {
			log.Fatalf("hillview-gen: %s: %v", path, err)
		}
		total += t.NumRows()
		fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows())
	}
	if err := storage.SyncDir(*out); err != nil {
		log.Fatalf("hillview-gen: %s: %v", *out, err)
	}
	fmt.Printf("done: %d rows × %d columns = %d cells in %d files\n",
		total, *cols, total**cols, len(partsList))
}
