package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/serve"
	"repro/internal/storage"
)

func testServer(t *testing.T) *server {
	return testServerViews(t, 0)
}

// testServerViews builds an in-process server with the given derived-
// view cap (0 = unlimited).
func testServerViews(t *testing.T, maxViews int) *server {
	t.Helper()
	flights.Register()
	pool := colstore.NewPool(0)
	dcache := storage.NewDataCache(0)
	loader := storage.NewLoaderWith(engine.Config{AggregationWindow: -1},
		storage.LoaderOpts{Pool: pool, Cache: dcache})
	s := newServer(engine.NewRoot(loader), serve.Config{Deadline: -1}, maxViews)
	s.attachEnv(pool, dcache, nil)
	return s
}

func get(t *testing.T, h http.HandlerFunc, url string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	var body map[string]any
	if rec.Code == http.StatusOK && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, body
}

func TestParseOrder(t *testing.T) {
	o, err := parseOrder("+A,-B,C")
	if err != nil {
		t.Fatal(err)
	}
	if len(o) != 3 || !o[0].Ascending || o[1].Ascending || !o[2].Ascending {
		t.Fatalf("order = %v", o)
	}
	if _, err := parseOrder(""); err == nil {
		t.Error("empty order should fail")
	}
}

func TestLoadMetaTableEndpoints(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=5000,parts=2,seed=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("load: %d %s", rec.Code, rec.Body.String())
	}
	if body["rows"].(float64) != 5000 {
		t.Errorf("rows = %v", body["rows"])
	}
	rec, body = get(t, s.handleMeta, "/api/meta?view=fl")
	if rec.Code != http.StatusOK || body["schema"] == nil {
		t.Fatalf("meta: %d", rec.Code)
	}
	rec, body = get(t, s.handleTable, "/api/table?view=fl&order=-DepDelay&extra=Carrier&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("table: %d %s", rec.Code, rec.Body.String())
	}
	if rows := body["rows"].([]any); len(rows) != 5 {
		t.Errorf("rows = %d", len(rows))
	}
	// Error paths.
	rec, _ = get(t, s.handleMeta, "/api/meta?view=ghost")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("ghost view: %d", rec.Code)
	}
	rec, _ = get(t, s.handleLoad, "/api/load?name=only")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing source: %d", rec.Code)
	}
}

// TestStatusEndpoint checks the soft-state stats surface: computation
// cache, data cache, and column pool all report.
func TestStatusEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=2000,parts=2,seed=1")
	get(t, s.handleMeta, "/api/meta?view=fl")
	rec, body := get(t, s.handleStatus, "/api/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
	}
	for _, key := range []string{"computationCache", "dataCache", "columnPool", "replays"} {
		if _, ok := body[key]; !ok {
			t.Errorf("status missing %q: %v", key, body)
		}
	}
	cc := body["computationCache"].(map[string]any)
	if cc["hits"].(float64)+cc["misses"].(float64) == 0 {
		t.Errorf("computation cache never consulted: %v", cc)
	}
}

// TestStatusEndpointClusterWire checks that in cluster mode the status
// endpoint reports per-connection wire counters: bytes and frames in
// each direction plus encode/decode time — the observability behind the
// binary codec's bandwidth claims.
func TestStatusEndpointClusterWire(t *testing.T) {
	flights.Register()
	w := cluster.NewWorker(storage.NewLoader(engine.Config{AggregationWindow: -1}, 0))
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	clu, err := cluster.Connect([]string{addr}, engine.Config{AggregationWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	s := newServer(engine.NewRoot(clu.Loader()), serve.Config{Deadline: -1}, 0)
	s.attachEnv(nil, nil, clu)
	if rec, _ := get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=2000,parts=2,seed=1"); rec.Code != http.StatusOK {
		t.Fatalf("load: %d %s", rec.Code, rec.Body.String())
	}
	get(t, s.handleMeta, "/api/meta?view=fl")
	rec, body := get(t, s.handleStatus, "/api/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
	}
	conns, ok := body["wire"].([]any)
	if !ok || len(conns) != 1 {
		t.Fatalf("wire section missing or wrong size: %v", body["wire"])
	}
	c0 := conns[0].(map[string]any)
	if c0["worker"].(string) != addr {
		t.Errorf("worker = %v, want %s", c0["worker"], addr)
	}
	for _, key := range []string{"bytesIn", "bytesOut", "framesIn", "framesOut", "encodeNs", "decodeNs"} {
		if v, ok := c0[key].(float64); !ok || v <= 0 {
			t.Errorf("wire counter %q did not move: %v", key, c0[key])
		}
	}
}

func TestHistogramEndpointStreamsNDJSON(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=20000,parts=8,seed=2"); rec.Code != 200 {
		t.Fatal(rec.Body.String())
	}
	req := httptest.NewRequest("GET", "/api/histogram?view=fl&col=DepDelay&bars=20&cdf=1", nil)
	rec := httptest.NewRecorder()
	s.handleHistogram(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("histogram: %d %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 1 {
		t.Fatal("no NDJSON lines")
	}
	// The last line is the final summary with buckets and cdf.
	var final map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final["partial"] != false {
		t.Errorf("last line should be final: %v", final)
	}
	if counts := final["counts"].([]any); len(counts) != 20 {
		t.Errorf("bars = %d", len(counts))
	}
	if final["cdf"] == nil {
		t.Error("cdf missing")
	}
}

func TestFilterAndHeavyHittersEndpoints(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=10000,parts=2,seed=3")
	rec, body := get(t, s.handleFilter, `/api/filter?view=fl&name=ua&expr=Carrier=="UA"`)
	if rec.Code != http.StatusOK {
		t.Fatalf("filter: %d %s", rec.Code, rec.Body.String())
	}
	if body["rows"].(float64) <= 0 {
		t.Error("empty filter result")
	}
	req := httptest.NewRequest("GET", "/api/heavyhitters?view=ua&col=Carrier&k=5", nil)
	rec = httptest.NewRecorder()
	s.handleHeavyHitters(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("hh: %d", rec.Code)
	}
	var items []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0]["value"] != "UA" {
		t.Errorf("items = %v", items)
	}
}

func TestSVGEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=5000,parts=2,seed=4")
	req := httptest.NewRequest("GET", "/api/svg/histogram?view=fl&col=Distance", nil)
	rec := httptest.NewRecorder()
	s.handleHistogramSVG(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("svg: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.HasPrefix(rec.Body.String(), "<svg") {
		t.Error("not SVG output")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type = %q", ct)
	}
}

func TestHeatmapEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=10000,parts=2,seed=5")
	rec, body := get(t, s.handleHeatmap, "/api/heatmap?view=fl&x=DepDelay&y=ArrDelay")
	if rec.Code != http.StatusOK {
		t.Fatalf("heatmap: %d %s", rec.Code, rec.Body.String())
	}
	if body["counts"] == nil || body["rate"] == nil {
		t.Error("heatmap response incomplete")
	}
	rec, _ = get(t, s.handleHeatmap, "/api/heatmap?view=fl&x=NoCol&y=ArrDelay")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad column: %d", rec.Code)
	}
}

// TestStatusServeSection pins the JSON shape of the scheduler telemetry
// under "serve": the admission gauges and overload counters handlers
// and dashboards rely on.
func TestStatusServeSection(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=2000,parts=2,seed=1")
	get(t, s.handleMeta, "/api/meta?view=fl")
	rec, body := get(t, s.handleStatus, "/api/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
	}
	sv, ok := body["serve"].(map[string]any)
	if !ok {
		t.Fatalf("serve section missing: %v", body)
	}
	for _, key := range []string{
		"in_flight", "queued", "admitted", "shed", "queue_timeouts",
		"deadline_exceeded", "cancelled", "panics_recovered", "dedup_joins", "execs",
	} {
		if _, ok := sv[key]; !ok {
			t.Errorf("serve section missing %q: %v", key, sv)
		}
	}
	if sv["admitted"].(float64) == 0 {
		t.Errorf("no queries admitted: %v", sv)
	}
	views, ok := body["views"].(map[string]any)
	if !ok || views["loaded"].(float64) != 1 {
		t.Errorf("views section = %v", body["views"])
	}
}

// TestDerivedViewEviction pins the derived-view cap: past -max-views,
// the least-recently-used derived view is evicted, requests for it get
// a 404 naming the eviction, and loaded root views are never evicted.
func TestDerivedViewEviction(t *testing.T) {
	s := testServerViews(t, 2)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=5000,parts=2,seed=6")
	for _, f := range []string{"a", "b"} {
		rec, _ := get(t, s.handleFilter, `/api/filter?view=fl&name=`+f+`&expr=Carrier=="UA"`)
		if rec.Code != http.StatusOK {
			t.Fatalf("filter %s: %d %s", f, rec.Code, rec.Body.String())
		}
	}
	// Touch "a" so "b" is the LRU victim of the next derivation.
	if rec, _ := get(t, s.handleMeta, "/api/meta?view=a"); rec.Code != http.StatusOK {
		t.Fatalf("meta a: %d", rec.Code)
	}
	if rec, _ := get(t, s.handleFilter, `/api/filter?view=fl&name=c&expr=Carrier=="AA"`); rec.Code != http.StatusOK {
		t.Fatal("filter c failed")
	}
	rec, _ := get(t, s.handleMeta, "/api/meta?view=b")
	if rec.Code != http.StatusNotFound {
		t.Errorf("evicted view: %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "evicted") {
		t.Errorf("404 body does not name the eviction: %q", rec.Body.String())
	}
	for _, name := range []string{"fl", "a", "c"} {
		if rec, _ := get(t, s.handleMeta, "/api/meta?view="+name); rec.Code != http.StatusOK {
			t.Errorf("view %s: %d, want 200", name, rec.Code)
		}
	}
	// Unknown views stay 400 — eviction is the only 404.
	if rec, _ := get(t, s.handleMeta, "/api/meta?view=nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown view: %d, want 400", rec.Code)
	}
	// Re-deriving an evicted name resurrects it.
	if rec, _ := get(t, s.handleFilter, `/api/filter?view=fl&name=b&expr=Carrier=="UA"`); rec.Code != http.StatusOK {
		t.Fatal("re-derive b failed")
	}
	if rec, _ := get(t, s.handleMeta, "/api/meta?view=b"); rec.Code != http.StatusOK {
		t.Errorf("re-derived view b: %d", rec.Code)
	}
}

// TestHandlerPanicBecomes500 pins the render-path isolation: a panic in
// a handler becomes that request's 500 through the Recovered middleware
// and is counted in the scheduler stats.
func TestHandlerPanicBecomes500(t *testing.T) {
	s := testServer(t)
	h := s.sched.Recovered(func(w http.ResponseWriter, r *http.Request) {
		panic("render bug")
	})
	req := httptest.NewRequest("GET", "/api/meta?view=x", nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if s.sched.Stats().PanicsRecovered != 1 {
		t.Error("panic not counted")
	}
}
