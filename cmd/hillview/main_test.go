package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
)

func testServer(t *testing.T) *server {
	t.Helper()
	flights.Register()
	pool := colstore.NewPool(0)
	dcache := storage.NewDataCache(0)
	loader := storage.NewLoaderWith(engine.Config{AggregationWindow: -1},
		storage.LoaderOpts{Pool: pool, Cache: dcache})
	return &server{
		sheet:  spreadsheet.New(engine.NewRoot(loader)),
		pool:   pool,
		dcache: dcache,
		views:  make(map[string]*spreadsheet.View),
	}
}

func get(t *testing.T, h http.HandlerFunc, url string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	var body map[string]any
	if rec.Code == http.StatusOK && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, body
}

func TestParseOrder(t *testing.T) {
	o, err := parseOrder("+A,-B,C")
	if err != nil {
		t.Fatal(err)
	}
	if len(o) != 3 || !o[0].Ascending || o[1].Ascending || !o[2].Ascending {
		t.Fatalf("order = %v", o)
	}
	if _, err := parseOrder(""); err == nil {
		t.Error("empty order should fail")
	}
}

func TestLoadMetaTableEndpoints(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=5000,parts=2,seed=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("load: %d %s", rec.Code, rec.Body.String())
	}
	if body["rows"].(float64) != 5000 {
		t.Errorf("rows = %v", body["rows"])
	}
	rec, body = get(t, s.handleMeta, "/api/meta?view=fl")
	if rec.Code != http.StatusOK || body["schema"] == nil {
		t.Fatalf("meta: %d", rec.Code)
	}
	rec, body = get(t, s.handleTable, "/api/table?view=fl&order=-DepDelay&extra=Carrier&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("table: %d %s", rec.Code, rec.Body.String())
	}
	if rows := body["rows"].([]any); len(rows) != 5 {
		t.Errorf("rows = %d", len(rows))
	}
	// Error paths.
	rec, _ = get(t, s.handleMeta, "/api/meta?view=ghost")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("ghost view: %d", rec.Code)
	}
	rec, _ = get(t, s.handleLoad, "/api/load?name=only")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing source: %d", rec.Code)
	}
}

// TestStatusEndpoint checks the soft-state stats surface: computation
// cache, data cache, and column pool all report.
func TestStatusEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=2000,parts=2,seed=1")
	get(t, s.handleMeta, "/api/meta?view=fl")
	rec, body := get(t, s.handleStatus, "/api/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
	}
	for _, key := range []string{"computationCache", "dataCache", "columnPool", "replays"} {
		if _, ok := body[key]; !ok {
			t.Errorf("status missing %q: %v", key, body)
		}
	}
	cc := body["computationCache"].(map[string]any)
	if cc["hits"].(float64)+cc["misses"].(float64) == 0 {
		t.Errorf("computation cache never consulted: %v", cc)
	}
}

// TestStatusEndpointClusterWire checks that in cluster mode the status
// endpoint reports per-connection wire counters: bytes and frames in
// each direction plus encode/decode time — the observability behind the
// binary codec's bandwidth claims.
func TestStatusEndpointClusterWire(t *testing.T) {
	flights.Register()
	w := cluster.NewWorker(storage.NewLoader(engine.Config{AggregationWindow: -1}, 0))
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	clu, err := cluster.Connect([]string{addr}, engine.Config{AggregationWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	s := &server{
		sheet: spreadsheet.New(engine.NewRoot(clu.Loader())),
		clu:   clu,
		views: make(map[string]*spreadsheet.View),
	}
	if rec, _ := get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=2000,parts=2,seed=1"); rec.Code != http.StatusOK {
		t.Fatalf("load: %d %s", rec.Code, rec.Body.String())
	}
	get(t, s.handleMeta, "/api/meta?view=fl")
	rec, body := get(t, s.handleStatus, "/api/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
	}
	conns, ok := body["wire"].([]any)
	if !ok || len(conns) != 1 {
		t.Fatalf("wire section missing or wrong size: %v", body["wire"])
	}
	c0 := conns[0].(map[string]any)
	if c0["worker"].(string) != addr {
		t.Errorf("worker = %v, want %s", c0["worker"], addr)
	}
	for _, key := range []string{"bytesIn", "bytesOut", "framesIn", "framesOut", "encodeNs", "decodeNs"} {
		if v, ok := c0[key].(float64); !ok || v <= 0 {
			t.Errorf("wire counter %q did not move: %v", key, c0[key])
		}
	}
}

func TestHistogramEndpointStreamsNDJSON(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=20000,parts=8,seed=2"); rec.Code != 200 {
		t.Fatal(rec.Body.String())
	}
	req := httptest.NewRequest("GET", "/api/histogram?view=fl&col=DepDelay&bars=20&cdf=1", nil)
	rec := httptest.NewRecorder()
	s.handleHistogram(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("histogram: %d %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 1 {
		t.Fatal("no NDJSON lines")
	}
	// The last line is the final summary with buckets and cdf.
	var final map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final["partial"] != false {
		t.Errorf("last line should be final: %v", final)
	}
	if counts := final["counts"].([]any); len(counts) != 20 {
		t.Errorf("bars = %d", len(counts))
	}
	if final["cdf"] == nil {
		t.Error("cdf missing")
	}
}

func TestFilterAndHeavyHittersEndpoints(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=10000,parts=2,seed=3")
	rec, body := get(t, s.handleFilter, `/api/filter?view=fl&name=ua&expr=Carrier=="UA"`)
	if rec.Code != http.StatusOK {
		t.Fatalf("filter: %d %s", rec.Code, rec.Body.String())
	}
	if body["rows"].(float64) <= 0 {
		t.Error("empty filter result")
	}
	req := httptest.NewRequest("GET", "/api/heavyhitters?view=ua&col=Carrier&k=5", nil)
	rec = httptest.NewRecorder()
	s.handleHeavyHitters(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("hh: %d", rec.Code)
	}
	var items []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0]["value"] != "UA" {
		t.Errorf("items = %v", items)
	}
}

func TestSVGEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=5000,parts=2,seed=4")
	req := httptest.NewRequest("GET", "/api/svg/histogram?view=fl&col=Distance", nil)
	rec := httptest.NewRecorder()
	s.handleHistogramSVG(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("svg: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.HasPrefix(rec.Body.String(), "<svg") {
		t.Error("not SVG output")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type = %q", ct)
	}
}

func TestHeatmapEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=10000,parts=2,seed=5")
	rec, body := get(t, s.handleHeatmap, "/api/heatmap?view=fl&x=DepDelay&y=ArrDelay")
	if rec.Code != http.StatusOK {
		t.Fatalf("heatmap: %d %s", rec.Code, rec.Body.String())
	}
	if body["counts"] == nil || body["rate"] == nil {
		t.Error("heatmap response incomplete")
	}
	rec, _ = get(t, s.handleHeatmap, "/api/heatmap?view=fl&x=NoCol&y=ArrDelay")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad column: %d", rec.Code)
	}
}
