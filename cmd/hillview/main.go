// Command hillview runs the Hillview root: the web server of Figure 1.
// It connects to worker servers (or hosts the data itself when no
// workers are given), exposes the spreadsheet as an HTTP JSON API, and
// streams progressive results over chunked NDJSON — the stdlib stand-in
// for the paper's WebSocket streaming RPC (§6).
//
// Usage:
//
//	hillview -http :8080 [-workers host1:8100,host2:8100]
//
// Endpoints (all GET, JSON responses):
//
//	/api/load?name=fl&source=flights:rows=1000000     load a dataset
//	/api/meta?view=fl                                 schema + row count
//	/api/table?view=fl&order=+DepDelay&k=20           tabular page
//	/api/histogram?view=fl&col=DepDelay&cdf=1         streams partials (NDJSON)
//	/api/heatmap?view=fl&x=DepDelay&y=ArrDelay        heat map summary
//	/api/heavyhitters?view=fl&col=Origin&k=20         heavy hitters
//	/api/filter?view=fl&name=ua&expr=Carrier=="UA"    derive a view
//	/api/status                                       cache, pool, wire, cluster + scheduler stats
//	/api/svg/histogram?view=fl&col=DepDelay           rendered SVG
//
// # Overload safety
//
// Every query runs through the serving-layer scheduler (internal/serve)
// rather than hitting the engine directly. Admission control holds at
// most -max-inflight queries executing with -queue-depth more waiting;
// a query arriving past both is rejected immediately. Each query gets
// the -query-deadline server deadline (callers with a tighter deadline
// keep theirs), identical concurrent cacheable queries share one
// execution, a panic anywhere in a query or render path becomes a 500
// for that request only, and client disconnects cancel the query via
// http.Request.Context — mid-scan, at the leaf.
//
// # Scan batching
//
// Distinct cacheable queries that arrive on the same dataset within the
// -batch-window (default 1ms; 0 disables) coalesce into one composite
// leaf pass (sketch.MultiSketch): the table's chunks are walked once
// and every member sketch folds from the shared stream, with each
// subscriber's partials and final result demuxed back out — bit-identical
// to a solo run, because the batch shares the solo path's chunk
// geometry, per-chunk sampling seeds, and merge order. A dashboard
// opening eight charts over one table costs one scan, not eight.
// Abandoning one batched query masks its member out of the remaining
// scan without disturbing the others. /api/status reports the batching
// telemetry: batches_formed, batch_members (total members across
// batches), and scans_saved (members minus batches).
//
// The error contract handlers return:
//
//	429 Too Many Requests   shed at admission (Retry-After is set)
//	503 Service Unavailable deadline expired while queued (Retry-After is set)
//	504 Gateway Timeout     deadline expired while executing
//	413 Content Too Large   requested page exceeds the result-row budget
//	500 Internal Server Error  recovered panic (that query only)
//	404 Not Found           view evicted by the derived-view cap (-max-views)
//	400 Bad Request         semantic errors: unknown view, bad column, bad expr
//
// Derived views (filters, zooms) are soft state: at most -max-views of
// them are kept, evicted least-recently-used; an evicted view's dataset
// is dropped from the engine registry and later requests for it get a
// 404 naming the eviction, after which the client re-derives it.
package main

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (-debug-addr)
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/serve"
	"repro/internal/sketch"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
	"repro/internal/table"
)

// DefaultMaxViews caps derived views kept per server (-max-views).
const DefaultMaxViews = 64

type server struct {
	sheet  *spreadsheet.Sheet
	sched  *serve.Scheduler
	pool   *colstore.Pool     // nil in cluster mode (pools live on workers)
	dcache *storage.DataCache // nil in cluster mode
	clu    *cluster.Cluster   // nil in in-process mode
	views  *viewRegistry

	// Streaming ingestion (nil unless -ingest-dir): the store owns the
	// crash-safe datasets, ingestM their shared telemetry. draining flips
	// on SIGTERM so requests arriving after the drain starts get a 503.
	ingest   *ingest.Store
	ingestM  *ingest.Metrics
	draining atomic.Bool

	// Observability: every subsystem's telemetry registers in reg (the
	// /metrics endpoint renders it; handleStatus mirrors it per group
	// section), tracer owns the finished-trace ring behind /api/trace/
	// and the slow-query log.
	reg         *obs.Registry
	tracer      *obs.Tracer
	httpReqs    *obs.Counter
	httpLatency *obs.Histogram
}

func main() {
	httpAddr := flag.String("http", ":8080", "HTTP listen address")
	workers := flag.String("workers", "", "comma-separated worker addresses (empty = in-process engine)")
	micro := flag.Int("micro", storage.DefaultMicroRows, "micropartition size for in-process mode")
	budget := flag.String("pool-budget", "", "column pool byte budget for in-process mode, e.g. 256M (default $HILLVIEW_POOL_BUDGET; 0 = unlimited)")
	replication := flag.Int("replication", 1, "replicas per partition group (workers are split into len(workers)/R groups)")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "worker ping interval; 0 disables the health monitor")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2×GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", serve.DefaultQueueDepth, "queries allowed to wait for a slot before shedding (negative = no queue)")
	queryDeadline := flag.Duration("query-deadline", serve.DefaultDeadline, "server-side query deadline (negative = none)")
	maxResultRows := flag.Int("max-result-rows", serve.DefaultMaxResultRows, "per-query result-row budget for tabular pages (negative = unlimited)")
	batchWindow := flag.Duration("batch-window", serve.DefaultBatchWindow, "scan-batching window: concurrent cacheable queries on one dataset within it share a single leaf pass (0 = disabled)")
	maxViews := flag.Int("max-views", DefaultMaxViews, "derived views kept before LRU eviction (0 = unlimited)")
	slowQuery := flag.Duration("slow-query", time.Second, "log one structured line per query slower than this (0 = disabled)")
	debugAddr := flag.String("debug-addr", "", "debug listen address serving /debug/pprof and /metrics (empty = disabled)")
	ingestDir := flag.String("ingest-dir", "", "root directory for crash-safe streaming ingest datasets (in-process mode only; empty = disabled)")
	segmentRows := flag.Int("segment-rows", ingest.DefaultSegmentRows, "auto-seal open ingest segments past this many buffered rows (negative = explicit seals only)")
	flag.Parse()

	flights.Register()
	cfg := engine.Config{}
	var (
		loader engine.Loader
		pool   *colstore.Pool
		dcache *storage.DataCache
		clu    *cluster.Cluster
		st     *ingest.Store
		im     *ingest.Metrics
		root   *engine.Root
	)
	if *workers == "" {
		budgetBytes := storage.PoolBudgetFromEnv()
		if *budget != "" {
			b, err := storage.ParseByteSize(*budget)
			if err != nil {
				log.Fatalf("hillview: %v", err)
			}
			budgetBytes = b
		}
		pool = colstore.NewPool(budgetBytes)
		dcache = storage.NewDataCache(0)
		loader = storage.NewLoaderWith(cfg, storage.LoaderOpts{MicroRows: *micro, Pool: pool, Cache: dcache})
		log.Printf("hillview: in-process engine (pool budget %d bytes)", budgetBytes)
		if *ingestDir != "" {
			// Sealing a partition advances the dataset's engine generation:
			// new queries observe the grown prefix, cached results for the
			// old prefix stay keyed to the old generation.
			im = &ingest.Metrics{}
			st = ingest.NewStore(*ingestDir, ingest.StoreConfig{
				SegmentRows: *segmentRows,
				Metrics:     im,
				OnSeal: func(name string, _ ingest.Partition) {
					if root != nil {
						root.Advance(name)
					}
				},
			})
			loader = st.WrapLoader(loader, cfg)
		}
	} else {
		if *ingestDir != "" {
			log.Fatalf("hillview: -ingest-dir requires the in-process engine (drop -workers); sealed partitions live on this server's disk")
		}
		addrs := strings.Split(*workers, ",")
		c, err := cluster.ConnectOptions(nil, addrs, cfg, cluster.Options{
			Replication:    *replication,
			HealthInterval: *healthEvery,
		})
		if err != nil {
			log.Fatalf("hillview: %v", err)
		}
		defer c.Close()
		loader = c.Loader()
		clu = c
		st := c.Stats()
		log.Printf("hillview: connected to %d workers (%d groups × %d replicas)",
			len(addrs), st.Groups, st.Replication)
	}
	root = engine.NewRoot(loader)
	s := newServer(root, serve.Config{
		MaxInFlight:   *maxInFlight,
		QueueDepth:    *queueDepth,
		Deadline:      *queryDeadline,
		MaxResultRows: *maxResultRows,
		BatchWindow:   *batchWindow,
	}, *maxViews)
	s.attachEnv(pool, dcache, clu)
	if st != nil {
		s.attachIngest(st, im)
		names, err := s.openIngestDatasets()
		if err != nil {
			log.Fatalf("hillview: %v", err)
		}
		log.Printf("hillview: ingest store at %s (%d datasets recovered)", *ingestDir, len(names))
	}
	s.tracer.SetSlowQuery(*slowQuery)
	if *debugAddr != "" {
		// The debug mux: net/http/pprof registered itself on the default
		// mux via its import; /metrics rides along so operators scrape and
		// profile on one out-of-band port.
		http.HandleFunc("/metrics", s.handleMetrics)
		go func() { log.Printf("hillview: debug server: %v", http.ListenAndServe(*debugAddr, nil)) }()
		log.Printf("hillview: debug server (pprof, /metrics) on %s", *debugAddr)
	}
	sc := s.sched.Config()
	log.Printf("hillview: admission %d in-flight + %d queued, deadline %v, view cap %d, slow-query %v",
		sc.MaxInFlight, sc.QueueDepth, sc.Deadline, *maxViews, *slowQuery)
	log.Printf("hillview: listening on %s", *httpAddr)

	// Graceful shutdown: SIGTERM/SIGINT starts a drain — in-flight
	// requests finish (bounded by the query deadline), late arrivals get
	// 503 + Retry-After, open ingest segments seal durably — then exit 0.
	srv := &http.Server{Addr: *httpAddr, Handler: s.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		log.Fatalf("hillview: %v", err)
	case sig := <-stop:
		drain := *queryDeadline
		if drain <= 0 {
			drain = 10 * time.Second
		}
		log.Printf("hillview: %v: draining in-flight requests (up to %v)", sig, drain)
		s.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("hillview: drain incomplete: %v", err)
		}
		if s.ingest != nil {
			if err := s.ingest.Close(); err != nil {
				log.Printf("hillview: sealing open ingest segments: %v", err)
			}
		}
		log.Printf("hillview: shutdown complete")
	}
}

// handler wraps the mux with the drain gate: once shutdown starts,
// every late request is refused with 503 + Retry-After instead of
// racing the closing subsystems.
func (s *server) handler() http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server is draining for shutdown", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// newServer wires the scheduler between the spreadsheet and the root:
// every vizketch the sheet runs goes through admission control. All
// environment-independent telemetry registers with the obs registry
// here; attachEnv adds the groups whose subsystems depend on the
// deployment mode (column pool, data cache, cluster, wire).
func newServer(root *engine.Root, cfg serve.Config, maxViews int) *server {
	sched := serve.New(root, cfg)
	s := &server{
		sheet:  spreadsheet.NewWithRunner(root, sched),
		sched:  sched,
		views:  newViewRegistry(maxViews, root.Drop),
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(0, time.Second, log.Printf),
	}

	hg := s.reg.Group("http", "http")
	s.httpReqs = hg.Counter("requests", "HTTP requests on query endpoints")
	s.httpLatency = hg.Histogram("request_duration", "HTTP request latency on query endpoints")

	sg := s.reg.Group("serve", "serve")
	stats := func(f func(serve.Stats) int64) func() int64 {
		return func() int64 { return f(s.sched.Stats()) }
	}
	sg.GaugeFunc("in_flight", "queries executing now", stats(func(st serve.Stats) int64 { return st.InFlight }))
	sg.GaugeFunc("queued", "queries waiting for a slot", stats(func(st serve.Stats) int64 { return st.Queued }))
	sg.CounterFunc("admitted", "queries granted an execution slot", stats(func(st serve.Stats) int64 { return st.Admitted }))
	sg.CounterFunc("shed", "queries rejected at admission", stats(func(st serve.Stats) int64 { return st.Shed }))
	sg.CounterFunc("queue_timeouts", "queries whose deadline expired while queued", stats(func(st serve.Stats) int64 { return st.QueueTimeouts }))
	sg.CounterFunc("deadline_exceeded", "queries whose deadline expired while executing", stats(func(st serve.Stats) int64 { return st.DeadlineExceeded }))
	sg.CounterFunc("cancelled", "queries cancelled by their caller", stats(func(st serve.Stats) int64 { return st.Cancelled }))
	sg.CounterFunc("panics_recovered", "query panics converted to errors", stats(func(st serve.Stats) int64 { return st.PanicsRecovered }))
	sg.CounterFunc("dedup_joins", "queries joined to an identical in-flight execution", stats(func(st serve.Stats) int64 { return st.DedupJoins }))
	sg.CounterFunc("execs", "underlying sketch executions", stats(func(st serve.Stats) int64 { return st.Execs }))
	sg.CounterFunc("batches_formed", "scan batches formed", stats(func(st serve.Stats) int64 { return st.BatchesFormed }))
	sg.CounterFunc("batch_members", "member queries across all batches", stats(func(st serve.Stats) int64 { return st.BatchMembers }))
	sg.CounterFunc("scans_saved", "leaf passes avoided by batching", stats(func(st serve.Stats) int64 { return st.ScansSaved }))
	sg.RegisterHistogram("query_duration", "end-to-end RunSketch latency", sched.LatencyHistogram())

	eg := s.reg.Group("engine", "engine")
	eg.CounterFunc("replays", "redo-log replay executions", root.ReplayCounter().Load)
	eg.CounterFunc("partials_emitted", "partial results delivered engine-wide", engine.PartialsCounter().Load)

	cg := s.reg.Group("computation_cache", "computationCache")
	cg.CounterFunc("hits", "computation cache hits", root.Cache().HitCounter().Load)
	cg.CounterFunc("misses", "computation cache misses", root.Cache().MissCounter().Load)
	cg.GaugeFunc("entries", "computation cache entries", func() int64 { return int64(root.Cache().Len()) })

	vg := s.reg.Group("views", "views")
	vg.GaugeFunc("loaded", "loaded root views", func() int64 { l, _, _ := s.views.counts(); return int64(l) })
	vg.GaugeFunc("derived", "derived views held", func() int64 { _, d, _ := s.views.counts(); return int64(d) })
	vg.GaugeFunc("evicted", "derived views evicted by the cap", func() int64 { _, _, e := s.views.counts(); return int64(e) })

	tg := s.reg.Group("traces", "traces")
	tg.CounterFunc("started", "traces started at HTTP ingress", s.tracer.Started)
	tg.CounterFunc("finished", "traces finished into the ring", s.tracer.Finished)
	tg.CounterFunc("slow_queries", "slow-query log lines emitted", s.tracer.SlowQueries)
	tg.GaugeFunc("ring", "finished traces held for /api/trace", func() int64 { return int64(s.tracer.RingLen()) })

	return s
}

// attachEnv installs the deployment-dependent subsystems and registers
// their telemetry: the in-process column pool and data cache, or the
// cluster's wire and health counters. Any of the three may be nil.
func (s *server) attachEnv(pool *colstore.Pool, dcache *storage.DataCache, clu *cluster.Cluster) {
	s.pool, s.dcache, s.clu = pool, dcache, clu
	if dcache != nil {
		g := s.reg.Group("data_cache", "dataCache")
		g.CounterFunc("hits", "raw-data cache hits", func() int64 { h, _, _ := dcache.Stats(); return h })
		g.CounterFunc("misses", "raw-data cache misses", func() int64 { _, m, _ := dcache.Stats(); return m })
		g.CounterFunc("purged", "raw-data cache purges", func() int64 { _, _, p := dcache.Stats(); return p })
		g.GaugeFunc("columns", "raw-data cache resident columns", func() int64 { return int64(dcache.Len()) })
	}
	if pool != nil {
		g := s.reg.Group("column_pool", "columnPool")
		g.GaugeFunc("resident_bytes", "column pool resident bytes", func() int64 { return pool.Stats().Resident })
		g.GaugeFunc("budget_bytes", "column pool byte budget", func() int64 { return pool.Stats().Budget })
		g.GaugeFunc("columns", "columns resident in the pool", func() int64 { return int64(pool.Stats().Columns) })
		g.GaugeFunc("pinned", "columns pinned by running scans", func() int64 { return int64(pool.Stats().Pinned) })
		g.CounterFunc("hits", "column pool hits", func() int64 { return pool.Stats().Hits })
		g.CounterFunc("misses", "column pool misses", func() int64 { return pool.Stats().Misses })
		g.CounterFunc("evictions", "column pool evictions", func() int64 { return pool.Stats().Evictions })
	}
	if clu != nil {
		wire := func(f func(cluster.WireStats) int64) func() int64 {
			return func() int64 {
				var sum int64
				for _, ws := range clu.WireStats() {
					sum += f(ws)
				}
				return sum
			}
		}
		wg := s.reg.Group("wire", "wire")
		wg.CounterFunc("bytes_in", "bytes received from workers", wire(func(ws cluster.WireStats) int64 { return ws.BytesIn }))
		wg.CounterFunc("bytes_out", "bytes sent to workers", wire(func(ws cluster.WireStats) int64 { return ws.BytesOut }))
		wg.CounterFunc("frames_in", "frames received from workers", wire(func(ws cluster.WireStats) int64 { return ws.FramesIn }))
		wg.CounterFunc("frames_out", "frames sent to workers", wire(func(ws cluster.WireStats) int64 { return ws.FramesOut }))
		wg.CounterFunc("encode_ns", "nanoseconds spent encoding frames", wire(func(ws cluster.WireStats) int64 { return ws.EncodeNS }))
		wg.CounterFunc("decode_ns", "nanoseconds spent decoding frames", wire(func(ws cluster.WireStats) int64 { return ws.DecodeNS }))

		g := s.reg.Group("cluster", "cluster")
		g.GaugeFunc("groups", "partition groups", func() int64 { return int64(clu.Stats().Groups) })
		g.GaugeFunc("replication", "replicas per group", func() int64 { return int64(clu.Stats().Replication) })
		g.GaugeFunc("workers", "known workers", func() int64 { return int64(len(clu.Stats().Workers)) })
		g.CounterFunc("retries", "failover retries", func() int64 { return clu.Stats().Retries })
		g.CounterFunc("spec_launches", "speculative re-executions launched", func() int64 { return clu.Stats().SpecLaunches })
		g.CounterFunc("spec_wins", "speculative attempts that won", func() int64 { return clu.Stats().SpecWins })
		g.CounterFunc("groups_lost", "queries that lost a whole replica group", func() int64 { return clu.Stats().GroupsLost })
		g.CounterFunc("reconnects", "worker reconnects", func() int64 { return clu.Stats().Reconnects })
	}
}

// traced wraps a query endpoint with per-request tracing: the trace ID
// arrives on X-Hillview-Trace (minted when absent), is echoed on the
// response, rides the request context through every layer — scheduler,
// engine, cluster wire — and the finished trace lands in the ring
// behind /api/trace/<id>. Status and introspection endpoints stay
// untraced.
func (s *server) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.httpReqs.Inc()
		start := time.Now()
		tr := s.tracer.Start(r.Header.Get("X-Hillview-Trace"))
		w.Header().Set("X-Hillview-Trace", tr.ID())
		sp := tr.StartSpan("http." + name)
		h(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		sp.End()
		tr.Finish(nil)
		s.httpLatency.ObserveSince(start)
	}
}

// mux registers the handlers, each wrapped so a panic in the handler
// body (render bugs included) becomes that request's 500; query
// endpoints are additionally wrapped with per-request tracing.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	query := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return s.traced(name, s.sched.Recovered(h))
	}
	mux.HandleFunc("/api/load", query("load", s.handleLoad))
	mux.HandleFunc("/api/meta", query("meta", s.handleMeta))
	mux.HandleFunc("/api/table", query("table", s.handleTable))
	mux.HandleFunc("/api/histogram", query("histogram", s.handleHistogram))
	mux.HandleFunc("/api/heatmap", query("heatmap", s.handleHeatmap))
	mux.HandleFunc("/api/heavyhitters", query("heavyhitters", s.handleHeavyHitters))
	mux.HandleFunc("/api/filter", query("filter", s.handleFilter))
	mux.HandleFunc("/api/ingest", query("ingest", s.handleIngest))
	mux.HandleFunc("/api/standing", query("standing", s.handleStanding))
	mux.HandleFunc("/api/status", s.sched.Recovered(s.handleStatus))
	mux.HandleFunc("/api/svg/histogram", query("svg.histogram", s.handleHistogramSVG))
	mux.HandleFunc("/api/trace/", s.sched.Recovered(s.handleTrace))
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// handleTrace serves one finished trace from the ring as JSON.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/trace/")
	rec, ok := s.tracer.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no finished trace %q (ring holds the last %d)", id, obs.DefaultTraceRing), http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

// handleMetrics renders every registered metric as Prometheus text.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		log.Printf("hillview: metrics: %v", err)
	}
}

// --- View registry with a derived-view cap ---

// evictedError reports a request for a derived view the cap pushed out.
type evictedError struct{ name string }

func (e *evictedError) Error() string {
	return fmt.Sprintf("view %q was evicted (derived-view cap); re-derive it", e.name)
}

// viewRegistry holds the server's views. Loaded root views are pinned;
// derived views (filters, zooms) are capped and evicted LRU. Eviction
// drops the dataset from the engine registry too — the redo log can
// rebuild it, the registry just stops holding it live.
type viewRegistry struct {
	mu      sync.Mutex
	cap     int
	loaded  map[string]*spreadsheet.View
	derived map[string]*list.Element // value: *derivedEntry
	lru     *list.List               // front = most recently used
	evicted map[string]bool
	drop    func(id string)
}

type derivedEntry struct {
	name string
	view *spreadsheet.View
}

func newViewRegistry(cap int, drop func(id string)) *viewRegistry {
	return &viewRegistry{
		cap:     cap,
		loaded:  make(map[string]*spreadsheet.View),
		derived: make(map[string]*list.Element),
		lru:     list.New(),
		evicted: make(map[string]bool),
		drop:    drop,
	}
}

func (vr *viewRegistry) get(name string) (*spreadsheet.View, error) {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	if v, ok := vr.loaded[name]; ok {
		return v, nil
	}
	if el, ok := vr.derived[name]; ok {
		vr.lru.MoveToFront(el)
		return el.Value.(*derivedEntry).view, nil
	}
	if vr.evicted[name] {
		return nil, &evictedError{name: name}
	}
	return nil, fmt.Errorf("no view %q (load it first)", name)
}

func (vr *viewRegistry) putLoaded(name string, v *spreadsheet.View) {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	vr.loaded[name] = v
	delete(vr.evicted, name)
}

func (vr *viewRegistry) putDerived(name string, v *spreadsheet.View) {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	delete(vr.evicted, name)
	if el, ok := vr.derived[name]; ok {
		el.Value.(*derivedEntry).view = v
		vr.lru.MoveToFront(el)
		return
	}
	vr.derived[name] = vr.lru.PushFront(&derivedEntry{name: name, view: v})
	for vr.cap > 0 && vr.lru.Len() > vr.cap {
		last := vr.lru.Back()
		e := last.Value.(*derivedEntry)
		vr.lru.Remove(last)
		delete(vr.derived, e.name)
		vr.evicted[e.name] = true
		if vr.drop != nil {
			vr.drop(e.view.ID())
		}
	}
}

func (vr *viewRegistry) counts() (loaded, derived, evicted int) {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	return len(vr.loaded), len(vr.derived), len(vr.evicted)
}

// --- Handlers ---

// handleStatus reports the soft-state caches: the computation cache
// (engine.Cache), the raw-data cache (storage.DataCache), and — in
// in-process mode — the column pool's resident/budget/eviction
// counters. In cluster mode it adds per-connection wire counters and
// the replication/failover telemetry (worker health, retry and
// speculation counts) from cluster.Stats. The "serve" section is the
// scheduler: admission gauges and the shed/deadline/panic/dedup
// counters of the overload contract.
func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	root := s.sheet.Root()
	hits, misses := root.Cache().Stats()
	loaded, derived, evicted := s.views.counts()
	out := map[string]any{
		"computationCache": map[string]any{
			"hits": hits, "misses": misses, "entries": root.Cache().Len(),
		},
		"replays": root.Replays(),
		"serve":   s.sched.Stats(),
		"views": map[string]any{
			"loaded": loaded, "derived": derived, "evicted": evicted,
		},
		"engine": map[string]any{
			"replays": root.Replays(), "partialsEmitted": engine.PartialsCounter().Load(),
		},
		"http": map[string]any{
			"requests":  s.httpReqs.Load(),
			"latencyMs": map[string]any{"p50": msQ(s.httpLatency, 0.5), "p95": msQ(s.httpLatency, 0.95), "p99": msQ(s.httpLatency, 0.99)},
		},
		"traces": map[string]any{
			"started": s.tracer.Started(), "finished": s.tracer.Finished(),
			"slowQueries": s.tracer.SlowQueries(), "ring": s.tracer.RingLen(),
		},
	}
	if s.ingest != nil {
		out["ingest"] = s.ingestStatus()
	}
	if s.dcache != nil {
		dh, dm, dp := s.dcache.Stats()
		out["dataCache"] = map[string]any{
			"hits": dh, "misses": dm, "purged": dp, "columns": s.dcache.Len(),
		}
	}
	if s.pool != nil {
		ps := s.pool.Stats()
		out["columnPool"] = map[string]any{
			"residentBytes": ps.Resident, "budgetBytes": ps.Budget,
			"columns": ps.Columns, "pinned": ps.Pinned,
			"hits": ps.Hits, "misses": ps.Misses, "evictions": ps.Evictions,
		}
	}
	if s.clu != nil {
		conns := make([]map[string]any, 0, len(s.clu.Clients()))
		for _, ws := range s.clu.WireStats() {
			conns = append(conns, map[string]any{
				"worker":  ws.Addr,
				"bytesIn": ws.BytesIn, "bytesOut": ws.BytesOut,
				"framesIn": ws.FramesIn, "framesOut": ws.FramesOut,
				"encodeNs": ws.EncodeNS, "decodeNs": ws.DecodeNS,
			})
		}
		out["wire"] = conns
		cs := s.clu.Stats()
		workers := make([]map[string]any, 0, len(cs.Workers))
		for _, wh := range cs.Workers {
			workers = append(workers, map[string]any{
				"addr": wh.Addr, "group": wh.Group, "state": wh.State,
				"consecutiveFailures": wh.ConsecutiveFailures,
				"reconnects":          wh.Reconnects,
				"generation":          wh.Generation,
				"lastPingNs":          wh.LastPingNS,
			})
		}
		out["cluster"] = map[string]any{
			"groups": cs.Groups, "replication": cs.Replication,
			"workers": workers,
			"retries": cs.Retries, "specLaunches": cs.SpecLaunches,
			"specWins": cs.SpecWins, "groupsLost": cs.GroupsLost,
			"reconnects": cs.Reconnects,
		}
	}
	writeJSON(w, out)
}

func (s *server) view(r *http.Request) (*spreadsheet.View, error) {
	return s.views.get(r.URL.Query().Get("view"))
}

// msQ renders a latency histogram quantile in (fractional) milliseconds.
func msQ(h *obs.Histogram, q float64) float64 {
	return float64(h.Quantile(q)) / 1e6
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("hillview: write: %v", err)
	}
}

// httpError writes err per the serving-layer contract (doc comment at
// the top of this file), with the view-eviction 404 layered on top.
func (s *server) httpError(w http.ResponseWriter, err error) {
	var ev *evictedError
	if errors.As(err, &ev) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.sched.WriteError(w, err)
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name, source := q.Get("name"), q.Get("source")
	if name == "" || source == "" {
		s.httpError(w, fmt.Errorf("need name and source"))
		return
	}
	v, err := s.sheet.Load(r.Context(), name, source)
	if err != nil {
		s.httpError(w, err)
		return
	}
	s.views.putLoaded(name, v)
	writeJSON(w, map[string]any{"view": name, "rows": v.NumRows(), "columns": v.Schema().NumColumns()})
}

func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	v, err := s.view(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"rows": v.NumRows(), "schema": v.Schema().Columns})
}

// parseOrder parses "+ColA,-ColB" sort specs.
func parseOrder(spec string) (table.RecordOrder, error) {
	if spec == "" {
		return nil, fmt.Errorf("need order")
	}
	var out table.RecordOrder
	for _, part := range strings.Split(spec, ",") {
		if part == "" {
			continue
		}
		asc := true
		switch part[0] {
		case '+':
			part = part[1:]
		case '-':
			asc, part = false, part[1:]
		}
		out = append(out, table.ColumnSortOrder{Column: part, Ascending: asc})
	}
	return out, nil
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) {
	v, err := s.view(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	q := r.URL.Query()
	order, err := parseOrder(q.Get("order"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	k, _ := strconv.Atoi(q.Get("k"))
	var extra []string
	if e := q.Get("extra"); e != "" {
		extra = strings.Split(e, ",")
	}
	list, err := v.TableView(r.Context(), order, extra, k, nil, nil)
	if err != nil {
		s.httpError(w, err)
		return
	}
	rows := make([][]string, len(list.Rows))
	for i, row := range list.Rows {
		rows[i] = make([]string, len(row))
		for c, val := range row {
			rows[i][c] = val.String()
		}
	}
	writeJSON(w, map[string]any{
		"columns": append(order.Columns(), extra...),
		"rows":    rows, "counts": list.Counts, "position": list.Before, "total": list.Total,
	})
}

// handleHistogram streams progressive NDJSON: one line per partial
// result, then a final line — the browser renders each as it arrives
// (paper §5.3's progressive visualization over the stdlib equivalent of
// a WebSocket). The request context cancels the underlying scan when
// the client disconnects mid-stream.
func (s *server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	v, err := s.view(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	q := r.URL.Query()
	col := q.Get("col")
	bars, _ := strconv.Atoi(q.Get("bars"))
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")

	enc := json.NewEncoder(w)
	var mu sync.Mutex
	hv, err := v.Histogram(r.Context(), col, spreadsheet.ChartOptions{
		Bars:    bars,
		WithCDF: q.Get("cdf") == "1",
		Exact:   q.Get("exact") == "1",
		OnPartial: func(p engine.Partial) {
			mu.Lock()
			defer mu.Unlock()
			h, ok := p.Result.(*sketch.Histogram)
			if !ok {
				return
			}
			enc.Encode(map[string]any{"partial": true, "done": p.Done, "total": p.Total, "counts": h.Counts})
			if flusher != nil {
				flusher.Flush()
			}
		},
	})
	if err != nil {
		s.httpError(w, err)
		return
	}
	mu.Lock()
	defer mu.Unlock()
	enc.Encode(map[string]any{
		"partial": false, "counts": hv.Hist.Counts, "missing": hv.Hist.Missing,
		"rate": hv.Hist.SampleRate, "buckets": hv.Buckets,
		"cdf": cdfOrNil(hv.CDF),
	})
}

func cdfOrNil(h *sketch.Histogram) []float64 {
	if h == nil {
		return nil
	}
	return h.CDF()
}

func (s *server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	v, err := s.view(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	q := r.URL.Query()
	hm, err := v.Heatmap(r.Context(), q.Get("x"), q.Get("y"), spreadsheet.ChartOptions{})
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"x": hm.Result.X, "y": hm.Result.Y, "counts": hm.Result.Counts, "rate": hm.Result.SampleRate,
	})
}

func (s *server) handleHeavyHitters(w http.ResponseWriter, r *http.Request) {
	v, err := s.view(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	q := r.URL.Query()
	k, _ := strconv.Atoi(q.Get("k"))
	if k <= 0 {
		k = 20
	}
	items, err := v.HeavyHitters(r.Context(), q.Get("col"), k, q.Get("sampled") == "1")
	if err != nil {
		s.httpError(w, err)
		return
	}
	type item struct {
		Value string `json:"value"`
		Count int64  `json:"count"`
	}
	out := make([]item, len(items))
	for i, it := range items {
		out[i] = item{Value: it.Value.String(), Count: it.Count}
	}
	writeJSON(w, out)
}

func (s *server) handleFilter(w http.ResponseWriter, r *http.Request) {
	v, err := s.view(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	q := r.URL.Query()
	name, expr := q.Get("name"), q.Get("expr")
	if name == "" || expr == "" {
		s.httpError(w, fmt.Errorf("need name and expr"))
		return
	}
	nv, err := v.FilterExpr(r.Context(), expr)
	if err != nil {
		s.httpError(w, err)
		return
	}
	s.views.putDerived(name, nv)
	writeJSON(w, map[string]any{"view": name, "rows": nv.NumRows()})
}

func (s *server) handleHistogramSVG(w http.ResponseWriter, r *http.Request) {
	v, err := s.view(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	q := r.URL.Query()
	hv, err := v.Histogram(r.Context(), q.Get("col"), spreadsheet.ChartOptions{WithCDF: q.Get("cdf") == "1"})
	if err != nil {
		s.httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, render.HistogramSVG(hv.Hist, hv.CDF, spreadsheet.DefaultWidth, spreadsheet.DefaultHeight))
}
