// Streaming-ingestion endpoints. Enabled with -ingest-dir (in-process
// mode only: sealed partitions live on the root's local disk), which
// roots an ingest.Store there and recovers every dataset under it on
// startup.
//
//	POST /api/ingest?op=create&name=ev&schema=ts:date,lat:double,msg:string
//	POST /api/ingest?op=append&name=ev     body {"rows": [[...], ...]}
//	POST /api/ingest?op=seal&name=ev
//	GET  /api/ingest?op=status[&name=ev]
//
//	POST /api/standing?op=register&name=ev&sketch=hist&col=lat&lo=-90&hi=90&bars=36
//	GET  /api/standing?op=get&name=ev&id=sq-1
//	GET  /api/standing?name=ev
//
// Appended rows buffer in the dataset's open segment (lost on crash,
// by contract) until a seal — explicit via op=seal, or automatic past
// -segment-rows — makes them a durable immutable partition. Each seal
// advances the dataset's engine generation, so every query endpoint
// observes the new sealed prefix immediately while cached results for
// the old prefix stay valid for readers still holding them. Standing
// queries re-merge only the newly sealed partition.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/ingest"
	"repro/internal/sketch"
	"repro/internal/table"
)

// attachIngest installs the ingest store and registers its telemetry
// group (section "ingest" in /api/status).
func (s *server) attachIngest(st *ingest.Store, m *ingest.Metrics) {
	s.ingest, s.ingestM = st, m
	m.Register(s.reg.Group("ingest", "ingest"))
}

// openIngestDatasets recovers every dataset under the store root and
// registers each as a loaded view named after the dataset.
func (s *server) openIngestDatasets() ([]string, error) {
	names, err := s.ingest.OpenAll()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if err := s.loadIngestView(name); err != nil {
			return names, fmt.Errorf("loading recovered dataset %q: %w", name, err)
		}
	}
	return names, nil
}

// loadIngestView makes the named ingest dataset queryable: one root
// view over the "ingest:" source, served like any loaded dataset.
func (s *server) loadIngestView(name string) error {
	v, err := s.sheet.Load(context.Background(), name, ingest.SourcePrefix+name)
	if err != nil {
		return err
	}
	s.views.putLoaded(name, v)
	return nil
}

func (s *server) ingestStore(w http.ResponseWriter) *ingest.Store {
	if s.ingest == nil {
		http.Error(w, "ingestion is disabled (start with -ingest-dir)", http.StatusBadRequest)
		return nil
	}
	return s.ingest
}

func (s *server) ingestDataset(w http.ResponseWriter, r *http.Request) *ingest.Dataset {
	st := s.ingestStore(w)
	if st == nil {
		return nil
	}
	d, err := st.Get(r.URL.Query().Get("name"))
	if err != nil {
		s.httpError(w, err)
		return nil
	}
	return d
}

// handleIngest is the dataset-lifecycle endpoint: create, append, seal,
// status.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	switch op := r.URL.Query().Get("op"); op {
	case "create":
		s.handleIngestCreate(w, r)
	case "append":
		s.handleIngestAppend(w, r)
	case "seal":
		s.handleIngestSeal(w, r)
	case "status", "":
		s.handleIngestStatus(w, r)
	default:
		http.Error(w, fmt.Sprintf("unknown op %q (want create, append, seal, status)", op), http.StatusBadRequest)
	}
}

// parseSchemaSpec parses "name:kind,name:kind" column specs.
func parseSchemaSpec(spec string) (*table.Schema, error) {
	if spec == "" {
		return nil, fmt.Errorf("need schema (e.g. schema=ts:date,lat:double)")
	}
	var cols []table.ColumnDesc
	for _, part := range strings.Split(spec, ",") {
		name, kindName, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad schema column %q (want name:kind)", part)
		}
		kind, err := table.ParseKind(kindName)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", name, err)
		}
		cols = append(cols, table.ColumnDesc{Name: name, Kind: kind})
	}
	return table.NewSchema(cols...), nil
}

func (s *server) handleIngestCreate(w http.ResponseWriter, r *http.Request) {
	st := s.ingestStore(w)
	if st == nil {
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	schema, err := parseSchemaSpec(q.Get("schema"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if _, err := st.Create(name, schema); err != nil {
		s.httpError(w, err)
		return
	}
	if err := s.loadIngestView(name); err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"dataset": name, "schema": schema.Columns})
}

// parseIngestRow converts one JSON row (an array of values) to a
// table.Row per the dataset schema. null means missing; dates accept
// RFC 3339 strings or epoch-millisecond numbers.
func parseIngestRow(schema *table.Schema, in []any) (table.Row, error) {
	if len(in) != schema.NumColumns() {
		return nil, fmt.Errorf("row has %d values, schema has %d columns", len(in), schema.NumColumns())
	}
	row := make(table.Row, len(in))
	for i, raw := range in {
		cd := schema.Columns[i]
		if raw == nil {
			row[i] = table.MissingValue(cd.Kind)
			continue
		}
		switch cd.Kind {
		case table.KindInt:
			n, ok := raw.(float64)
			if !ok || n != float64(int64(n)) {
				return nil, fmt.Errorf("column %q wants an integer, got %v", cd.Name, raw)
			}
			row[i] = table.IntValue(int64(n))
		case table.KindDouble:
			n, ok := raw.(float64)
			if !ok {
				return nil, fmt.Errorf("column %q wants a number, got %v", cd.Name, raw)
			}
			row[i] = table.DoubleValue(n)
		case table.KindString:
			str, ok := raw.(string)
			if !ok {
				return nil, fmt.Errorf("column %q wants a string, got %v", cd.Name, raw)
			}
			row[i] = table.StringValue(str)
		case table.KindDate:
			switch v := raw.(type) {
			case float64:
				row[i] = table.DateValue(time.UnixMilli(int64(v)).UTC())
			case string:
				t, err := time.Parse(time.RFC3339, v)
				if err != nil {
					return nil, fmt.Errorf("column %q: %w", cd.Name, err)
				}
				row[i] = table.DateValue(t)
			default:
				return nil, fmt.Errorf("column %q wants an RFC 3339 string or epoch millis, got %v", cd.Name, raw)
			}
		default:
			return nil, fmt.Errorf("column %q has unsupported kind %v", cd.Name, cd.Kind)
		}
	}
	return row, nil
}

func (s *server) handleIngestAppend(w http.ResponseWriter, r *http.Request) {
	d := s.ingestDataset(w, r)
	if d == nil {
		return
	}
	var req struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad append body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Rows) == 0 {
		http.Error(w, "append body has no rows", http.StatusBadRequest)
		return
	}
	rows := make([]table.Row, len(req.Rows))
	for i, in := range req.Rows {
		row, err := parseIngestRow(d.Schema(), in)
		if err != nil {
			http.Error(w, fmt.Sprintf("row %d: %v", i, err), http.StatusBadRequest)
			return
		}
		rows[i] = row
	}
	if err := d.AppendRows(r.Context(), rows); err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"dataset": d.Name(), "appended": len(rows),
		"openRows": d.OpenRows(), "generation": d.Generation(),
	})
}

func (s *server) handleIngestSeal(w http.ResponseWriter, r *http.Request) {
	d := s.ingestDataset(w, r)
	if d == nil {
		return
	}
	p, err := d.Seal(r.Context())
	if err != nil {
		s.httpError(w, err)
		return
	}
	out := map[string]any{"dataset": d.Name(), "generation": d.Generation(), "sealed": p != nil}
	if p != nil {
		out["partition"] = p
	}
	writeJSON(w, out)
}

// ingestDatasetStatus is one dataset's section in op=status and in
// /api/status.
func ingestDatasetStatus(d *ingest.Dataset) map[string]any {
	return map[string]any{
		"generation": d.Generation(),
		"partitions": d.Partitions(),
		"openRows":   d.OpenRows(),
		"standing":   d.Standing(),
	}
}

func (s *server) handleIngestStatus(w http.ResponseWriter, r *http.Request) {
	st := s.ingestStore(w)
	if st == nil {
		return
	}
	if name := r.URL.Query().Get("name"); name != "" {
		d, err := st.Get(name)
		if err != nil {
			s.httpError(w, err)
			return
		}
		writeJSON(w, ingestDatasetStatus(d))
		return
	}
	writeJSON(w, s.ingestStatus())
}

// ingestStatus renders the store-wide section shared by op=status and
// handleStatus.
func (s *server) ingestStatus() map[string]any {
	datasets := map[string]any{}
	for _, name := range s.ingest.Names() {
		d, err := s.ingest.Get(name)
		if err != nil {
			datasets[name] = map[string]any{"error": err.Error()}
			continue
		}
		datasets[name] = ingestDatasetStatus(d)
	}
	return map[string]any{
		"root":     s.ingest.Root(),
		"datasets": datasets,
		"appends":  s.ingestM.Appends.Load(), "appendedRows": s.ingestM.AppendedRows.Load(),
		"seals": s.ingestM.Seals.Load(), "sealedRows": s.ingestM.SealedRows.Load(),
		"recoveries":      s.ingestM.Recoveries.Load(),
		"tornTruncated":   s.ingestM.TornTruncated.Load(),
		"orphansRemoved":  s.ingestM.OrphansRemoved.Load(),
		"standingUpdates": s.ingestM.StandingUpdates.Load(),
	}
}

// handleStanding manages standing queries: registered once, their
// result re-merged incrementally on every seal.
func (s *server) handleStanding(w http.ResponseWriter, r *http.Request) {
	d := s.ingestDataset(w, r)
	if d == nil {
		return
	}
	switch op := r.URL.Query().Get("op"); op {
	case "register":
		s.handleStandingRegister(w, r, d)
	case "get":
		s.handleStandingGet(w, r, d)
	case "list", "":
		writeJSON(w, map[string]any{"dataset": d.Name(), "standing": d.Standing()})
	default:
		http.Error(w, fmt.Sprintf("unknown op %q (want register, get, list)", op), http.StatusBadRequest)
	}
}

// standingSketch builds the sketch named by the request: hist (needs
// lo, hi, bars), distinct, or range, each over column col.
func standingSketch(q map[string][]string, d *ingest.Dataset) (sketch.Sketch, error) {
	get := func(key string) string {
		if v, ok := q[key]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	col := get("col")
	cd, err := d.Schema().Column(col)
	if err != nil {
		return nil, err
	}
	switch kind := get("sketch"); kind {
	case "hist", "":
		lo, err1 := strconv.ParseFloat(get("lo"), 64)
		hi, err2 := strconv.ParseFloat(get("hi"), 64)
		if err1 != nil || err2 != nil || hi <= lo {
			return nil, fmt.Errorf("hist needs numeric lo < hi (got lo=%q hi=%q)", get("lo"), get("hi"))
		}
		bars, _ := strconv.Atoi(get("bars"))
		if bars <= 0 {
			bars = 20
		}
		if !cd.Kind.Numeric() {
			return nil, fmt.Errorf("column %q is not numeric", col)
		}
		return &sketch.HistogramSketch{Col: col, Buckets: sketch.NumericBuckets(cd.Kind, lo, hi, bars)}, nil
	case "distinct":
		return &sketch.DistinctCountSketch{Col: col}, nil
	case "range":
		if !cd.Kind.Numeric() {
			return nil, fmt.Errorf("column %q is not numeric", col)
		}
		return &sketch.RangeSketch{Col: col}, nil
	default:
		return nil, fmt.Errorf("unknown sketch %q (want hist, distinct, range)", kind)
	}
}

func (s *server) handleStandingRegister(w http.ResponseWriter, r *http.Request, d *ingest.Dataset) {
	sk, err := standingSketch(r.URL.Query(), d)
	if err != nil {
		s.httpError(w, err)
		return
	}
	q, err := d.Register(sk)
	if err != nil {
		s.httpError(w, err)
		return
	}
	res, upTo, _ := q.Result()
	writeJSON(w, map[string]any{"id": q.ID(), "sketch": sk.Name(), "upTo": upTo, "result": res})
}

func (s *server) handleStandingGet(w http.ResponseWriter, r *http.Request, d *ingest.Dataset) {
	id := r.URL.Query().Get("id")
	q, ok := d.StandingByID(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no standing query %q on dataset %q", id, d.Name()), http.StatusNotFound)
		return
	}
	res, upTo, err := q.Result()
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"id": id, "sketch": q.Sketch().Name(), "upTo": upTo, "result": res})
}
