package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/storage"
)

// testIngestServer builds an in-process server with streaming ingestion
// on an in-memory filesystem, wired exactly like main: store loader
// wrapping the storage loader, seal hook advancing the engine
// generation.
func testIngestServer(t *testing.T, segmentRows int) *server {
	t.Helper()
	flights.Register()
	cfg := engine.Config{AggregationWindow: -1}
	im := &ingest.Metrics{}
	var root *engine.Root
	st := ingest.NewStore("root", ingest.StoreConfig{
		FS:          ingest.NewMemFS(),
		SegmentRows: segmentRows,
		Metrics:     im,
		OnSeal: func(name string, _ ingest.Partition) {
			if root != nil {
				root.Advance(name)
			}
		},
	})
	t.Cleanup(func() { st.Close() })
	loader := st.WrapLoader(storage.NewLoaderWith(cfg, storage.LoaderOpts{}), cfg)
	root = engine.NewRoot(loader)
	s := newServer(root, serve.Config{Deadline: -1}, 0)
	s.attachEnv(nil, nil, nil)
	s.attachIngest(st, im)
	return s
}

// post drives a handler with a POST carrying a JSON body.
func post(t *testing.T, h http.HandlerFunc, url, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h(rec, req)
	var out map[string]any
	if rec.Code == http.StatusOK && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, out
}

// TestIngestLifecycleEndpoints walks the full dataset lifecycle over
// HTTP: create, append, seal, query through the ordinary chart
// endpoints, append more, and confirm queries track the growing sealed
// prefix through the generation counter.
func TestIngestLifecycleEndpoints(t *testing.T) {
	s := testIngestServer(t, -1)
	rec, body := post(t, s.handleIngest, "/api/ingest?op=create&name=ev&schema=v:double,tag:string", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	if body["dataset"] != "ev" {
		t.Fatalf("create body = %v", body)
	}

	rec, body = post(t, s.handleIngest, "/api/ingest?op=append&name=ev",
		`{"rows": [[1.0, "a"], [2.0, "b"], [3.0, "a"], [null, "c"]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}
	if body["openRows"].(float64) != 4 || body["generation"].(float64) != 0 {
		t.Fatalf("append body = %v", body)
	}

	rec, body = post(t, s.handleIngest, "/api/ingest?op=seal&name=ev", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("seal: %d %s", rec.Code, rec.Body.String())
	}
	if body["sealed"] != true || body["generation"].(float64) != 1 {
		t.Fatalf("seal body = %v", body)
	}

	// The sealed rows are queryable through the standard chart endpoints.
	rec, _ = get(t, s.handleHistogram, "/api/histogram?view=ev&col=v&bars=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("histogram: %d %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var final struct {
		Counts  []float64 `json:"counts"`
		Missing float64   `json:"missing"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	sum := final.Missing
	for _, c := range final.Counts {
		sum += c
	}
	if sum != 4 {
		t.Fatalf("histogram covers %v rows, want 4: %+v", sum, final)
	}

	// A second append+seal advances the generation; the same query then
	// sees 6 rows — the cache must not serve the 4-row answer.
	post(t, s.handleIngest, "/api/ingest?op=append&name=ev", `{"rows": [[5.5, "d"], [6.5, "d"]]}`)
	rec, body = post(t, s.handleIngest, "/api/ingest?op=seal&name=ev", "")
	if rec.Code != http.StatusOK || body["generation"].(float64) != 2 {
		t.Fatalf("second seal: %d %v", rec.Code, body)
	}
	rec, _ = get(t, s.handleHistogram, "/api/histogram?view=ev&col=v&bars=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("histogram after growth: %d %s", rec.Code, rec.Body.String())
	}
	lines = strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	sum = final.Missing
	for _, c := range final.Counts {
		sum += c
	}
	if sum != 6 {
		t.Fatalf("histogram after growth covers %v rows, want 6", sum)
	}

	// Status reports the dataset, its partitions, and the moved counters.
	rec, body = get(t, s.handleIngest, "/api/ingest?op=status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
	}
	ds := body["datasets"].(map[string]any)["ev"].(map[string]any)
	if parts := ds["partitions"].([]any); len(parts) != 2 {
		t.Fatalf("status partitions = %v", parts)
	}
	if body["seals"].(float64) != 2 || body["appendedRows"].(float64) != 6 {
		t.Fatalf("status counters = %v", body)
	}
}

// TestIngestEndpointErrors pins the 400 surface: malformed schemas,
// rows that don't match the schema, unknown datasets and ops, and a
// server started without -ingest-dir.
func TestIngestEndpointErrors(t *testing.T) {
	s := testIngestServer(t, -1)
	for _, tc := range []struct{ name, url, body string }{
		{"bad schema", "/api/ingest?op=create&name=x&schema=v", ""},
		{"bad kind", "/api/ingest?op=create&name=x&schema=v:blob", ""},
		{"no schema", "/api/ingest?op=create&name=x", ""},
		{"bad name", "/api/ingest?op=create&name=a/b&schema=v:int", ""},
		{"unknown op", "/api/ingest?op=zap&name=x", ""},
		{"unknown dataset", "/api/ingest?op=seal&name=ghost", ""},
	} {
		rec, _ := post(t, s.handleIngest, tc.url, tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400 (%s)", tc.name, rec.Code, rec.Body.String())
		}
	}
	if rec, _ := post(t, s.handleIngest, "/api/ingest?op=create&name=ev&schema=v:int,w:date", ""); rec.Code != http.StatusOK {
		t.Fatalf("create: %d", rec.Code)
	}
	for _, tc := range []struct{ name, body string }{
		{"no rows", `{"rows": []}`},
		{"not json", `rows`},
		{"wrong width", `{"rows": [[1]]}`},
		{"wrong type", `{"rows": [["x", 0]]}`},
		{"fractional int", `{"rows": [[1.5, 0]]}`},
		{"bad date", `{"rows": [[1, "yesterday"]]}`},
	} {
		rec, _ := post(t, s.handleIngest, "/api/ingest?op=append&name=ev", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("append %s: %d, want 400 (%s)", tc.name, rec.Code, rec.Body.String())
		}
	}
	// Dates arrive as RFC 3339 strings or epoch millis.
	rec, _ := post(t, s.handleIngest, "/api/ingest?op=append&name=ev",
		`{"rows": [[1, "2019-07-01T10:00:00Z"], [2, 1561975200000]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("date append: %d %s", rec.Code, rec.Body.String())
	}
}

// TestIngestDisabledWithout404 pins the disabled mode: without
// -ingest-dir the endpoints answer 400 naming the flag.
func TestIngestDisabled(t *testing.T) {
	s := testServer(t)
	for _, url := range []string{"/api/ingest?op=create&name=x&schema=v:int", "/api/standing?name=x"} {
		rec := httptest.NewRecorder()
		s.mux().ServeHTTP(rec, httptest.NewRequest("POST", url, nil))
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "-ingest-dir") {
			t.Errorf("%s: %d %q, want 400 naming -ingest-dir", url, rec.Code, rec.Body.String())
		}
	}
}

// TestIngestAutoSeal pins the -segment-rows threshold over HTTP: the
// third append crosses it and seals without an explicit op=seal.
func TestIngestAutoSeal(t *testing.T) {
	s := testIngestServer(t, 5)
	post(t, s.handleIngest, "/api/ingest?op=create&name=ev&schema=v:int", "")
	for i := 0; i < 3; i++ {
		rec, _ := post(t, s.handleIngest, "/api/ingest?op=append&name=ev", `{"rows": [[1], [2]]}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("append %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	rec, body := get(t, s.handleIngest, "/api/ingest?op=status&name=ev")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d", rec.Code)
	}
	if body["generation"].(float64) != 1 || body["openRows"].(float64) != 0 {
		t.Fatalf("auto-seal did not trigger: %v", body)
	}
	if parts := body["partitions"].([]any); len(parts) != 1 {
		t.Fatalf("partitions = %v", parts)
	}
}

// TestStandingEndpoints registers a standing histogram, grows the
// dataset, and watches the incrementally re-merged result track every
// seal.
func TestStandingEndpoints(t *testing.T) {
	s := testIngestServer(t, -1)
	post(t, s.handleIngest, "/api/ingest?op=create&name=ev&schema=v:double", "")
	rec, body := post(t, s.handleStanding, "/api/standing?op=register&name=ev&sketch=hist&col=v&lo=0&hi=10&bars=5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	id := body["id"].(string)
	if id == "" || body["upTo"].(float64) != 0 {
		t.Fatalf("register body = %v", body)
	}

	counts := func() (float64, float64) {
		rec, body := get(t, s.handleStanding, "/api/standing?op=get&name=ev&id="+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("get: %d %s", rec.Code, rec.Body.String())
		}
		var sum float64
		for _, c := range body["result"].(map[string]any)["Counts"].([]any) {
			sum += c.(float64)
		}
		return sum, body["upTo"].(float64)
	}
	post(t, s.handleIngest, "/api/ingest?op=append&name=ev", `{"rows": [[1.0], [2.0], [3.0]]}`)
	post(t, s.handleIngest, "/api/ingest?op=seal&name=ev", "")
	if sum, upTo := counts(); sum != 3 || upTo != 1 {
		t.Fatalf("after seal 1: sum=%v upTo=%v", sum, upTo)
	}
	post(t, s.handleIngest, "/api/ingest?op=append&name=ev", `{"rows": [[4.0], [5.0]]}`)
	post(t, s.handleIngest, "/api/ingest?op=seal&name=ev", "")
	if sum, upTo := counts(); sum != 5 || upTo != 2 {
		t.Fatalf("after seal 2: sum=%v upTo=%v", sum, upTo)
	}

	// distinct and range register too; unknown sketch and column do not.
	if rec, _ := post(t, s.handleStanding, "/api/standing?op=register&name=ev&sketch=distinct&col=v", ""); rec.Code != http.StatusOK {
		t.Errorf("distinct register: %d", rec.Code)
	}
	if rec, _ := post(t, s.handleStanding, "/api/standing?op=register&name=ev&sketch=range&col=v", ""); rec.Code != http.StatusOK {
		t.Errorf("range register: %d", rec.Code)
	}
	if rec, _ := post(t, s.handleStanding, "/api/standing?op=register&name=ev&sketch=median&col=v", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown sketch: %d", rec.Code)
	}
	if rec, _ := post(t, s.handleStanding, "/api/standing?op=register&name=ev&sketch=hist&col=ghost&lo=0&hi=1", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown column: %d", rec.Code)
	}
	if rec, _ := get(t, s.handleStanding, "/api/standing?op=get&name=ev&id=sq-99"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown standing id: %d", rec.Code)
	}
	rec, body = get(t, s.handleStanding, "/api/standing?name=ev")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	if got := len(body["standing"].([]any)); got != 3 {
		t.Errorf("listed %d standing queries, want 3", got)
	}
}

// TestDrainGate pins the shutdown 503: once draining flips, every
// request through the top-level handler is refused with Retry-After.
func TestDrainGate(t *testing.T) {
	s := testIngestServer(t, -1)
	h := s.handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-drain status: %d", rec.Code)
	}
	s.draining.Store(true)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/status", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining status: %d (Retry-After %q), want 503", rec.Code, rec.Header().Get("Retry-After"))
	}
}

// TestShutdownSealsOpenSegments pins the shutdown contract around
// buffered rows: closing the store (as the SIGTERM path does) seals
// them durably, and a store reopened over the same filesystem recovers
// them.
func TestShutdownSealsOpenSegments(t *testing.T) {
	flights.Register()
	fs := ingest.NewMemFS()
	cfg := engine.Config{AggregationWindow: -1}
	st := ingest.NewStore("root", ingest.StoreConfig{FS: fs, SegmentRows: -1})
	var root *engine.Root
	_ = root
	loader := st.WrapLoader(storage.NewLoaderWith(cfg, storage.LoaderOpts{}), cfg)
	root = engine.NewRoot(loader)
	s := newServer(root, serve.Config{Deadline: -1}, 0)
	s.attachEnv(nil, nil, nil)
	s.attachIngest(st, &ingest.Metrics{})

	post(t, s.handleIngest, "/api/ingest?op=create&name=ev&schema=v:int", "")
	if rec, _ := post(t, s.handleIngest, "/api/ingest?op=append&name=ev", `{"rows": [[7], [8]]}`); rec.Code != http.StatusOK {
		t.Fatalf("append: %d", rec.Code)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := ingest.NewStore("root", ingest.StoreConfig{FS: fs})
	defer re.Close()
	d, err := re.Get("ev")
	if err != nil {
		t.Fatal(err)
	}
	parts := d.Partitions()
	if len(parts) != 1 || parts[0].Rows != 2 {
		t.Fatalf("recovered partitions = %+v, want one 2-row partition", parts)
	}
}
