package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/storage"
)

// clusterServer builds a server over a real cluster of n workers with
// the given replication factor.
func clusterServer(t *testing.T, n, replication int) *server {
	t.Helper()
	flights.Register()
	cfg := engine.Config{AggregationWindow: -1}
	addrs := make([]string, n)
	for i := range addrs {
		w := cluster.NewWorker(storage.NewLoader(cfg, 0))
		addr, err := w.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = addr
	}
	clu, err := cluster.ConnectOptions(nil, addrs, cfg, cluster.Options{Replication: replication})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clu.Close() })
	s := newServer(engine.NewRoot(clu.Loader()), serve.Config{Deadline: -1}, 0)
	s.attachEnv(nil, nil, clu)
	return s
}

// TestStatusMetricsDrift pins the register-through-obs rule: every
// group in the metrics registry names the /api/status section that
// carries the same telemetry, and that section must actually exist in
// the status JSON — so /metrics and /api/status cannot drift apart
// silently. Checked in both deployment modes, since attachEnv registers
// different groups in each.
func TestStatusMetricsDrift(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    *server
	}{
		{"in-process", testServer(t)},
		{"cluster", clusterServer(t, 1, 1)},
		{"ingest", testIngestServer(t, -1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.s
			get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=2000,parts=2,seed=1")
			rec, body := get(t, s.handleStatus, "/api/status")
			if rec.Code != http.StatusOK {
				t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
			}
			groups := s.reg.Groups()
			if len(groups) < 6 {
				t.Fatalf("only %d groups registered", len(groups))
			}
			for _, g := range groups {
				if g.Section == "" {
					t.Errorf("group %q has no status section", g.Name)
					continue
				}
				if _, ok := body[g.Section]; !ok {
					t.Errorf("registered group %q: status JSON has no %q section (drift)", g.Name, g.Section)
				}
			}
		})
	}
}

// TestMetricsEndpoint scrapes /metrics after a few queries and checks
// the output is valid Prometheus exposition text containing the
// subsystem metrics, latency histogram included.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=5000,parts=2,seed=1")
	mux := s.mux()
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest("GET", "/api/histogram?view=fl&col=Distance&bars=10", nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("histogram: %d %s", rec.Code, rec.Body.String())
		}
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	text := rec.Body.String()
	if err := obs.ValidatePrometheusText(text); err != nil {
		t.Fatalf("invalid exposition text: %v\n%s", err, text)
	}
	for _, want := range []string{
		"hillview_http_requests_total",
		"hillview_serve_admitted_total",
		"hillview_serve_query_duration_seconds_bucket",
		"hillview_serve_query_duration_seconds_count",
		"hillview_engine_replays_total",
		"hillview_engine_partials_emitted_total",
		"hillview_computation_cache_misses_total",
		"hillview_views_loaded",
		"hillview_traces_started_total",
		"hillview_column_pool_resident_bytes",
		"hillview_data_cache_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The query latency histogram must have recorded the two queries
	// (plus the load), not just exist.
	if s.sched.LatencyHistogram().Count() < 2 {
		t.Errorf("latency histogram count = %d", s.sched.LatencyHistogram().Count())
	}
}

// TestTraceEndToEndCluster is the acceptance path: a query sent with an
// X-Hillview-Trace header against a 2-replica cluster must yield, at
// /api/trace/<id>, a finished trace whose spans cover the whole
// pipeline — HTTP ingress, admission queue, execution, the root→worker
// RPC, and the worker-side scan and merge stitched into the same
// timeline.
func TestTraceEndToEndCluster(t *testing.T) {
	s := clusterServer(t, 2, 2)
	mux := s.mux()
	if rec, _ := get(t, s.handleLoad, "/api/load?name=fl&source=flights:rows=20000,parts=4,seed=7"); rec.Code != http.StatusOK {
		t.Fatalf("load: %d %s", rec.Code, rec.Body.String())
	}
	const id = "deadbeef01234567"
	req := httptest.NewRequest("GET", "/api/histogram?view=fl&col=Distance&bars=10", nil)
	req.Header.Set("X-Hillview-Trace", id)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("histogram: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Hillview-Trace"); got != id {
		t.Errorf("response trace header = %q, want %q", got, id)
	}

	req = httptest.NewRequest("GET", "/api/trace/"+id, nil)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", rec.Code, rec.Body.String())
	}
	var tr struct {
		ID      string `json:"id"`
		Dataset string `json:"dataset"`
		Sketch  string `json:"sketch"`
		Spans   []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("bad trace JSON: %v\n%s", err, rec.Body.String())
	}
	if tr.ID != id {
		t.Errorf("trace id = %q", tr.ID)
	}
	// Repro info for the slow-query line: dataset and sketch name.
	if tr.Dataset == "" || tr.Sketch == "" {
		t.Errorf("trace missing repro info: dataset=%q sketch=%q", tr.Dataset, tr.Sketch)
	}
	have := map[string]int{}
	for _, sp := range tr.Spans {
		have[sp.Name]++
	}
	for _, want := range []string{
		"http.histogram", "serve.queue", "serve.exec",
		"wire.call", "worker.sketch", "scan.leaf", "merge.tree",
	} {
		if have[want] == 0 {
			t.Errorf("trace has no %q span; spans = %v", want, have)
		}
	}

	// An unknown trace ID is a 404, not a crash or empty 200.
	req = httptest.NewRequest("GET", "/api/trace/0000000000000000", nil)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace: %d, want 404", rec.Code)
	}
}

// TestTraceUntracedStatusEndpoints pins that introspection endpoints do
// not mint traces: scraping /metrics and /api/status must not grow the
// trace ring.
func TestTraceUntracedStatusEndpoints(t *testing.T) {
	s := testServer(t)
	mux := s.mux()
	for _, url := range []string{"/api/status", "/metrics"} {
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", url, rec.Code)
		}
	}
	if n := s.tracer.Started(); n != 0 {
		t.Errorf("introspection endpoints started %d traces", n)
	}
}
