// Command hillview-worker runs one Hillview worker server: it loads
// dataset shards from local storage on request and executes vizketches
// over them, streaming partial results to the root (paper Fig. 1).
//
// Workers are stateless: all loaded data is soft state that the root
// rebuilds through its redo log after a restart (paper §5.8), so a
// worker can be killed and restarted at any time.
//
// Usage:
//
//	hillview-worker -listen :8100 [-micro 250000] [-parallelism 0] [-pool-budget 256M]
//
// HVC sources are served through the memory-mapped column store: column
// data is loaded lazily per scan, pinned while in use, and evicted
// under the -pool-budget byte budget (default from HILLVIEW_POOL_BUDGET,
// 0 = unlimited), so a worker can serve datasets larger than its RAM.
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (-debug-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/storage"
)

func main() {
	listen := flag.String("listen", ":8100", "address to listen on")
	micro := flag.Int("micro", storage.DefaultMicroRows, "micropartition size in rows")
	parallelism := flag.Int("parallelism", 0, "leaf thread pool size (0 = all cores)")
	window := flag.Duration("window", engine.DefaultAggregationWindow, "partial-result aggregation window")
	budget := flag.String("pool-budget", "", "column pool byte budget, e.g. 256M (default $HILLVIEW_POOL_BUDGET; 0 = unlimited)")
	debugAddr := flag.String("debug-addr", "", "debug listen address serving /debug/pprof (empty = disabled)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM, wait this long for in-flight requests before closing connections")
	flag.Parse()

	budgetBytes := storage.PoolBudgetFromEnv()
	if *budget != "" {
		b, err := storage.ParseByteSize(*budget)
		if err != nil {
			log.Fatalf("hillview-worker: %v", err)
		}
		budgetBytes = b
	}
	pool := colstore.NewPool(budgetBytes)
	if *debugAddr != "" {
		go func() { log.Printf("hillview-worker: debug server: %v", http.ListenAndServe(*debugAddr, nil)) }()
		log.Printf("hillview-worker: debug server (pprof) on %s", *debugAddr)
	}

	flights.Register()
	cfg := engine.Config{Parallelism: *parallelism, AggregationWindow: *window}
	w := cluster.NewWorker(storage.NewPooledLoader(cfg, *micro, pool))
	w.SetLogf(log.Printf)
	addr, err := w.Listen(*listen)
	if err != nil {
		log.Fatalf("hillview-worker: %v", err)
	}
	log.Printf("hillview-worker: serving on %s (micropartitions of %d rows, pool budget %d bytes)",
		addr, *micro, budgetBytes)

	// Graceful shutdown: SIGTERM/SIGINT drains — new requests are
	// refused (the root's failover retries them on replicas), in-flight
	// requests get -drain-timeout to finish — then the process exits 0.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("hillview-worker: %v: draining (up to %v, %d requests in flight)", got, *drainTimeout, w.ActiveRequests())
	if err := w.Drain(*drainTimeout); err != nil {
		log.Printf("hillview-worker: %v", err)
	}
	log.Printf("hillview-worker: shutdown complete")
}
