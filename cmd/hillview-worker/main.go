// Command hillview-worker runs one Hillview worker server: it loads
// dataset shards from local storage on request and executes vizketches
// over them, streaming partial results to the root (paper Fig. 1).
//
// Workers are stateless: all loaded data is soft state that the root
// rebuilds through its redo log after a restart (paper §5.8), so a
// worker can be killed and restarted at any time.
//
// Usage:
//
//	hillview-worker -listen :8100 [-micro 250000] [-parallelism 0]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/storage"
)

func main() {
	listen := flag.String("listen", ":8100", "address to listen on")
	micro := flag.Int("micro", storage.DefaultMicroRows, "micropartition size in rows")
	parallelism := flag.Int("parallelism", 0, "leaf thread pool size (0 = all cores)")
	window := flag.Duration("window", engine.DefaultAggregationWindow, "partial-result aggregation window")
	flag.Parse()

	flights.Register()
	cfg := engine.Config{Parallelism: *parallelism, AggregationWindow: *window}
	w := cluster.NewWorker(storage.NewLoader(cfg, *micro))
	w.SetLogf(log.Printf)
	addr, err := w.Listen(*listen)
	if err != nil {
		log.Fatalf("hillview-worker: %v", err)
	}
	log.Printf("hillview-worker: serving on %s (micropartitions of %d rows)", addr, *micro)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("hillview-worker: shutting down")
	w.Close()
	time.Sleep(100 * time.Millisecond)
}
