package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/baseline/rowdb"
	"repro/internal/baseline/sparklike"
	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/sketch"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
	"repro/internal/table"
)

// The benchmarks below regenerate each evaluation artifact of the paper
// at test scale; cmd/hillview-bench runs the same code at configurable
// scale and prints the paper-style tables.
//
//	Figure 5  → BenchmarkFig5Ops       (per-op latency, both systems)
//	Figure 6  → BenchmarkFig6Cold      (cold-start op latency)
//	§7.2.1    → BenchmarkMicro         (single-thread histogram 3 ways)
//	Figure 7  → BenchmarkFig7Leaves    (leaf scaling)
//	Figure 8  → BenchmarkFig8Servers   (server scaling)
//	Figure 11 → BenchmarkFig11Case     (case-study scripts)

var (
	fig5Once sync.Once
	fig5Env  *bench.HVEnv
	fig5View *spreadsheet.View
	fig5Err  error
)

func benchParams() bench.Params {
	p := bench.DefaultParams()
	p.BaseRows = 50000
	p.Cols = 30
	p.Workers = 2
	p.PartsPerWorker = 4
	return p
}

func fig5Setup(b *testing.B) (*bench.HVEnv, *spreadsheet.View) {
	b.Helper()
	fig5Once.Do(func() {
		fig5Env, fig5Err = bench.StartHV(benchParams())
		if fig5Err != nil {
			return
		}
		fig5View, fig5Err = fig5Env.LoadScale(1)
	})
	if fig5Err != nil {
		b.Fatal(fig5Err)
	}
	return fig5Env, fig5View
}

// BenchmarkFig5Ops measures every Figure 4 operation on Hillview (over
// loopback workers) and on the Spark-like baseline (Figure 5 top).
func BenchmarkFig5Ops(b *testing.B) {
	env, view := fig5Setup(b)
	for _, op := range bench.Ops {
		b.Run("Hillview/"+op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Deterministic headline sketches (O7, O9) are cacheable;
				// invalidate so every iteration computes rather than
				// probing the cache.
				env.Sheet.Root().Cache().InvalidateDataset(view.ID())
				if err := op.Hillview(context.Background(), view, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	p := benchParams()
	parts := bench.GenScale(p, 1)
	eng := sparklike.New(p.Workers * p.WorkerParallelism)
	for _, op := range bench.Ops {
		b.Run("Spark/"+op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				senv := bench.NewSparkEnv(eng, parts)
				if err := op.Spark(senv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Cold measures a cold-start histogram: data evicted from
// every worker, reloaded from .hvc files as part of the operation
// (Figure 6).
func BenchmarkFig6Cold(b *testing.B) {
	p := benchParams()
	dir := b.TempDir()
	src, err := bench.WriteColdShards(p, 1, dir)
	if err != nil {
		b.Fatal(err)
	}
	env, err := bench.StartHV(p)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	view, err := env.Sheet.Load(context.Background(), "cold", src)
	if err != nil {
		b.Fatal(err)
	}
	op, err := bench.OpByName("O5")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env.DropData(1) // evict soft state everywhere
		env.Sheet.Root().Cache().InvalidateDataset("cold")
		b.StartTimer()
		if err := op.Hillview(context.Background(), view, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro is the §7.2.1 single-thread comparison: streaming
// vizketch vs sampled vizketch vs general-purpose row database.
func BenchmarkMicro(b *testing.B) {
	const rows = 1000000
	t := flights.Gen("bench-micro", rows, 1, flights.CoreColumns)
	spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 25)

	b.Run("streaming", func(b *testing.B) {
		sk := &sketch.HistogramSketch{Col: "Distance", Buckets: spec}
		for i := 0; i < b.N; i++ {
			if _, err := sk.Summarize(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampling", func(b *testing.B) {
		rate := sketch.Rate(sketch.HistogramSampleSize(25, 100, 0.01), rows)
		for i := 0; i < b.N; i++ {
			sk := &sketch.SampledHistogramSketch{Col: "Distance", Buckets: spec, Rate: rate, Seed: uint64(i)}
			if _, err := sk.Summarize(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("database", func(b *testing.B) {
		// The row database holds boxed rows; load a tenth of the data
		// once and time only the query.
		small := flights.Gen("bench-db", rows/10, 1, flights.CoreColumns)
		db := rowdb.New()
		if err := db.LoadColumnar("flights", small, nil); err != nil {
			b.Fatal(err)
		}
		dbt, err := db.Table("flights")
		if err != nil {
			b.Fatal(err)
		}
		pos, err := dbt.ColPos("Distance")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(rowdb.Query{
				Table:   "flights",
				GroupBy: rowdb.FloorDiv{X: rowdb.Col{Pos: pos}, Off: 0, Width: 120},
				Aggs:    []rowdb.Agg{{Kind: rowdb.AggCount}},
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rows/10), "rows")
	})
}

// BenchmarkFig7Leaves measures histogram latency as leaves and shards
// grow together (Figure 7: flat streaming, super-linear sampling).
func BenchmarkFig7Leaves(b *testing.B) {
	const rowsPerLeaf = 50000
	for _, leaves := range []int{1, 4, 16} {
		parts := flights.GenPartitions(fmt.Sprintf("b7-%d", leaves), rowsPerLeaf*leaves, leaves, 1, flights.CoreColumns)
		ds := engine.NewLocal("b7", parts, engine.Config{Parallelism: leaves, AggregationWindow: -1})
		spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 25)
		b.Run(fmt.Sprintf("streaming/leaves=%d", leaves), func(b *testing.B) {
			sk := &sketch.HistogramSketch{Col: "Distance", Buckets: spec}
			for i := 0; i < b.N; i++ {
				if _, err := ds.Sketch(context.Background(), sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sampled/leaves=%d", leaves), func(b *testing.B) {
			rate := sketch.Rate(sketch.HistogramSampleSize(25, 100, 0.01), rowsPerLeaf*leaves)
			for i := 0; i < b.N; i++ {
				sk := &sketch.SampledHistogramSketch{Col: "Distance", Buckets: spec, Rate: rate, Seed: uint64(i)}
				if _, err := ds.Sketch(context.Background(), sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Servers measures histogram latency as worker servers and
// data grow together over loopback TCP (Figure 8).
func BenchmarkFig8Servers(b *testing.B) {
	for _, servers := range []int{1, 2, 4} {
		p := benchParams()
		p.Workers = servers
		p.WorkerParallelism = 2
		env, err := bench.StartHV(p)
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("b8-%d", servers)
		src := fmt.Sprintf("flights:rows=100000,parts=8,cols=20,seed=%d00{worker}", p.Seed)
		if _, err := env.Sheet.Load(context.Background(), name, src); err != nil {
			env.Close()
			b.Fatal(err)
		}
		spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 25)
		b.Run(fmt.Sprintf("streaming/servers=%d", servers), func(b *testing.B) {
			sk := &sketch.HistogramSketch{Col: "Distance", Buckets: spec}
			for i := 0; i < b.N; i++ {
				env.Sheet.Root().Cache().InvalidateDataset(name) // cacheable sketch
				if _, err := env.Sheet.Root().RunSketch(context.Background(), name, sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sampled/servers=%d", servers), func(b *testing.B) {
			rate := sketch.Rate(sketch.HistogramSampleSize(25, 100, 0.01), 100000*servers)
			for i := 0; i < b.N; i++ {
				sk := &sketch.SampledHistogramSketch{Col: "Distance", Buckets: spec, Rate: rate, Seed: uint64(i)}
				if _, err := env.Sheet.Root().RunSketch(context.Background(), name, sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		env.Close()
	}
}

// --- Kernel micro-benchmarks -------------------------------------------
//
// The benchmarks below isolate the leaf scan kernels (span iteration,
// batch bucket indexing, typed column access) that every sketch runs on;
// BENCH_kernels.json records before/after numbers for the vectorized
// rewrite. Data is synthesized directly into columnar storage so the
// numbers measure the scan, not the generator.

// kernelTable builds a table with one int, one double, and one string
// column of deterministic values (no missing cells unless withMissing).
func kernelTable(id string, rows int, withMissing bool) *table.Table {
	ints := make([]int64, rows)
	doubles := make([]float64, rows)
	strs := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		strs = append(strs, fmt.Sprintf("val-%02d", i))
	}
	codes := make([]string, rows)
	x := uint64(12345)
	for i := 0; i < rows; i++ {
		// SplitMix64-style mix keeps values deterministic and well spread.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		ints[i] = int64(z % 1000000)
		doubles[i] = float64(z%3000000) / 1000.0
		codes[i] = strs[z%64]
	}
	var miss *table.Bitset
	if withMissing {
		miss = table.NewBitset(rows)
		for i := 0; i < rows; i += 97 {
			miss.Set(i)
		}
	}
	schema := table.NewSchema(
		table.ColumnDesc{Name: "i", Kind: table.KindInt},
		table.ColumnDesc{Name: "d", Kind: table.KindDouble},
		table.ColumnDesc{Name: "s", Kind: table.KindString},
	)
	cols := []table.Column{
		table.NewIntColumn(table.KindInt, ints, miss),
		table.NewDoubleColumn(doubles, miss),
		table.NewStringColumn(codes, miss),
	}
	return table.New(id, schema, cols, table.FullMembership(rows))
}

// kernelMembers returns the table restricted to the named membership
// shape: "full" keeps all rows, "sparse" keeps ~1% as a sorted list.
func kernelMembers(t *table.Table, shape string) *table.Table {
	if shape == "full" {
		return t
	}
	max := t.Members().Max()
	var rows []int32
	for i := 0; i < max; i += 101 {
		rows = append(rows, int32(i))
	}
	return table.New(t.ID()+"-sparse", t.Schema(), []table.Column{
		t.MustColumn("i"), t.MustColumn("d"), t.MustColumn("s"),
	}, table.NewSparseMembership(rows, max))
}

func reportRows(b *testing.B, rows int) {
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

// BenchmarkKernelHistExact is the headline kernel: an exact histogram
// over an int column (ISSUE 1 acceptance: ≥2× over the seed per-row
// path at 10M rows, full membership).
func BenchmarkKernelHistExact(b *testing.B) {
	for _, rows := range []int{1000000, 10000000} {
		t := kernelTable(fmt.Sprintf("kh-%d", rows), rows, false)
		for _, shape := range []string{"full", "sparse"} {
			tt := kernelMembers(t, shape)
			spec := sketch.NumericBuckets(table.KindInt, 0, 1000000, 50)
			sk := &sketch.HistogramSketch{Col: "i", Buckets: spec}
			b.Run(fmt.Sprintf("rows=%d/%s", rows, shape), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sk.Summarize(tt); err != nil {
						b.Fatal(err)
					}
				}
				reportRows(b, tt.NumRows())
			})
		}
	}
}

// BenchmarkKernelHistMissing measures the missing-mask overhead on the
// exact histogram (1 in 97 rows missing).
func BenchmarkKernelHistMissing(b *testing.B) {
	const rows = 1000000
	t := kernelTable("khm", rows, true)
	spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 50)
	sk := &sketch.HistogramSketch{Col: "d", Buckets: spec}
	for i := 0; i < b.N; i++ {
		if _, err := sk.Summarize(t); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkKernelHistSampled measures the sampled histogram scan.
func BenchmarkKernelHistSampled(b *testing.B) {
	const rows = 10000000
	t := kernelTable("khs", rows, false)
	spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 50)
	for _, shape := range []string{"full", "sparse"} {
		tt := kernelMembers(t, shape)
		sk := &sketch.SampledHistogramSketch{Col: "d", Buckets: spec, Rate: 0.01, Seed: 42}
		b.Run(shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sk.Summarize(tt); err != nil {
					b.Fatal(err)
				}
			}
			reportRows(b, tt.NumRows())
		})
	}
}

// BenchmarkKernelHeavyHitters measures Misra–Gries over a dictionary
// string column.
func BenchmarkKernelHeavyHitters(b *testing.B) {
	const rows = 1000000
	t := kernelTable("khh", rows, false)
	for _, shape := range []string{"full", "sparse"} {
		tt := kernelMembers(t, shape)
		sk := &sketch.MisraGriesSketch{Col: "s", K: 16}
		b.Run(shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sk.Summarize(tt); err != nil {
					b.Fatal(err)
				}
			}
			reportRows(b, tt.NumRows())
		})
	}
}

// BenchmarkKernelHist2D measures the two-axis bucket kernel.
func BenchmarkKernelHist2D(b *testing.B) {
	const rows = 1000000
	t := kernelTable("kh2", rows, false)
	for _, shape := range []string{"full", "sparse"} {
		tt := kernelMembers(t, shape)
		sk := &sketch.Histogram2DSketch{
			XCol: "i", YCol: "d",
			X: sketch.NumericBuckets(table.KindInt, 0, 1000000, 25),
			Y: sketch.NumericBuckets(table.KindDouble, 0, 3000, 20),
		}
		b.Run(shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sk.Summarize(tt); err != nil {
					b.Fatal(err)
				}
			}
			reportRows(b, tt.NumRows())
		})
	}
}

// BenchmarkKernelRange measures the min/max scan kernel.
func BenchmarkKernelRange(b *testing.B) {
	const rows = 1000000
	t := kernelTable("kr", rows, false)
	sk := &sketch.RangeSketch{Col: "d"}
	for i := 0; i < b.N; i++ {
		if _, err := sk.Summarize(t); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkKernelDistinct measures the HyperLogLog scan kernel over the
// int column.
func BenchmarkKernelDistinct(b *testing.B) {
	const rows = 1000000
	t := kernelTable("kd", rows, false)
	sk := &sketch.DistinctCountSketch{Col: "i"}
	for i := 0; i < b.N; i++ {
		if _, err := sk.Summarize(t); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkKernelShardedScan measures the engine-level sharded leaf
// scan: one 10M-row partition summarized as concurrent fixed-range
// chunks merged with the sketch's own Merge.
func BenchmarkKernelShardedScan(b *testing.B) {
	const rows = 10000000
	t := kernelTable("kss", rows, false)
	spec := sketch.NumericBuckets(table.KindInt, 0, 1000000, 50)
	sk := &sketch.HistogramSketch{Col: "i", Buckets: spec}
	ds := engine.NewLocal("kss", []*table.Table{t}, engine.Config{AggregationWindow: -1})
	for i := 0; i < b.N; i++ {
		if _, err := ds.Sketch(context.Background(), sk, nil); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkKernelParallelAgg measures the engine-level aggregation
// overhaul end to end: per-worker accumulators draining the chunk queue
// and combining in a pairwise merge tree, across the three summary
// shapes that stress it differently (dense tallies, a 2-D count matrix,
// and the code-keyed Misra–Gries state).
func BenchmarkKernelParallelAgg(b *testing.B) {
	const rows = 10000000
	t := kernelTable("kpa", rows, false)
	ds := engine.NewLocal("kpa", []*table.Table{t}, engine.Config{AggregationWindow: -1})
	sketches := []struct {
		name string
		sk   sketch.Sketch
	}{
		{"hist", &sketch.HistogramSketch{Col: "i", Buckets: sketch.NumericBuckets(table.KindInt, 0, 1000000, 50)}},
		{"hist2d", &sketch.Histogram2DSketch{
			XCol: "i", YCol: "d",
			X: sketch.NumericBuckets(table.KindInt, 0, 1000000, 25),
			Y: sketch.NumericBuckets(table.KindDouble, 0, 3000, 20),
		}},
		{"heavyhitters", &sketch.MisraGriesSketch{Col: "s", K: 16}},
	}
	for _, tc := range sketches {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ds.Sketch(context.Background(), tc.sk, nil); err != nil {
					b.Fatal(err)
				}
			}
			reportRows(b, rows)
		})
	}
}

// BenchmarkFig11Case replays the case-study scripts (Figure 11 machine
// time).
func BenchmarkFig11Case(b *testing.B) {
	root := engine.NewRoot(storage.NewLoader(engine.Config{AggregationWindow: -1}, 0))
	sheet := spreadsheet.New(root)
	view, err := sheet.Load(context.Background(), "fl", "flights:rows=50000,parts=4,seed=7")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig11(view); err != nil {
			b.Fatal(err)
		}
	}
}
