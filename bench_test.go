package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/baseline/rowdb"
	"repro/internal/baseline/sparklike"
	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/sketch"
	"repro/internal/spreadsheet"
	"repro/internal/storage"
	"repro/internal/table"
)

// The benchmarks below regenerate each evaluation artifact of the paper
// at test scale; cmd/hillview-bench runs the same code at configurable
// scale and prints the paper-style tables.
//
//	Figure 5  → BenchmarkFig5Ops       (per-op latency, both systems)
//	Figure 6  → BenchmarkFig6Cold      (cold-start op latency)
//	§7.2.1    → BenchmarkMicro         (single-thread histogram 3 ways)
//	Figure 7  → BenchmarkFig7Leaves    (leaf scaling)
//	Figure 8  → BenchmarkFig8Servers   (server scaling)
//	Figure 11 → BenchmarkFig11Case     (case-study scripts)

var (
	fig5Once sync.Once
	fig5Env  *bench.HVEnv
	fig5View *spreadsheet.View
	fig5Err  error
)

func benchParams() bench.Params {
	p := bench.DefaultParams()
	p.BaseRows = 50000
	p.Cols = 30
	p.Workers = 2
	p.PartsPerWorker = 4
	return p
}

func fig5Setup(b *testing.B) (*bench.HVEnv, *spreadsheet.View) {
	b.Helper()
	fig5Once.Do(func() {
		fig5Env, fig5Err = bench.StartHV(benchParams())
		if fig5Err != nil {
			return
		}
		fig5View, fig5Err = fig5Env.LoadScale(1)
	})
	if fig5Err != nil {
		b.Fatal(fig5Err)
	}
	return fig5Env, fig5View
}

// BenchmarkFig5Ops measures every Figure 4 operation on Hillview (over
// loopback workers) and on the Spark-like baseline (Figure 5 top).
func BenchmarkFig5Ops(b *testing.B) {
	env, view := fig5Setup(b)
	for _, op := range bench.Ops {
		b.Run("Hillview/"+op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Deterministic headline sketches (O7, O9) are cacheable;
				// invalidate so every iteration computes rather than
				// probing the cache.
				env.Sheet.Root().Cache().InvalidateDataset(view.ID())
				if err := op.Hillview(context.Background(), view, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	p := benchParams()
	parts := bench.GenScale(p, 1)
	eng := sparklike.New(p.Workers * p.WorkerParallelism)
	for _, op := range bench.Ops {
		b.Run("Spark/"+op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				senv := bench.NewSparkEnv(eng, parts)
				if err := op.Spark(senv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Cold measures a cold-start histogram: data evicted from
// every worker, reloaded from .hvc files as part of the operation
// (Figure 6).
func BenchmarkFig6Cold(b *testing.B) {
	p := benchParams()
	dir := b.TempDir()
	src, err := bench.WriteColdShards(p, 1, dir)
	if err != nil {
		b.Fatal(err)
	}
	env, err := bench.StartHV(p)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	view, err := env.Sheet.Load("cold", src)
	if err != nil {
		b.Fatal(err)
	}
	op, err := bench.OpByName("O5")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env.DropData(1) // evict soft state everywhere
		env.Sheet.Root().Cache().InvalidateDataset("cold")
		b.StartTimer()
		if err := op.Hillview(context.Background(), view, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro is the §7.2.1 single-thread comparison: streaming
// vizketch vs sampled vizketch vs general-purpose row database.
func BenchmarkMicro(b *testing.B) {
	const rows = 1000000
	t := flights.Gen("bench-micro", rows, 1, flights.CoreColumns)
	spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 25)

	b.Run("streaming", func(b *testing.B) {
		sk := &sketch.HistogramSketch{Col: "Distance", Buckets: spec}
		for i := 0; i < b.N; i++ {
			if _, err := sk.Summarize(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampling", func(b *testing.B) {
		rate := sketch.Rate(sketch.HistogramSampleSize(25, 100, 0.01), rows)
		for i := 0; i < b.N; i++ {
			sk := &sketch.SampledHistogramSketch{Col: "Distance", Buckets: spec, Rate: rate, Seed: uint64(i)}
			if _, err := sk.Summarize(t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("database", func(b *testing.B) {
		// The row database holds boxed rows; load a tenth of the data
		// once and time only the query.
		small := flights.Gen("bench-db", rows/10, 1, flights.CoreColumns)
		db := rowdb.New()
		if err := db.LoadColumnar("flights", small, nil); err != nil {
			b.Fatal(err)
		}
		dbt, err := db.Table("flights")
		if err != nil {
			b.Fatal(err)
		}
		pos, err := dbt.ColPos("Distance")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(rowdb.Query{
				Table:   "flights",
				GroupBy: rowdb.FloorDiv{X: rowdb.Col{Pos: pos}, Off: 0, Width: 120},
				Aggs:    []rowdb.Agg{{Kind: rowdb.AggCount}},
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rows/10), "rows")
	})
}

// BenchmarkFig7Leaves measures histogram latency as leaves and shards
// grow together (Figure 7: flat streaming, super-linear sampling).
func BenchmarkFig7Leaves(b *testing.B) {
	const rowsPerLeaf = 50000
	for _, leaves := range []int{1, 4, 16} {
		parts := flights.GenPartitions(fmt.Sprintf("b7-%d", leaves), rowsPerLeaf*leaves, leaves, 1, flights.CoreColumns)
		ds := engine.NewLocal("b7", parts, engine.Config{Parallelism: leaves, AggregationWindow: -1})
		spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 25)
		b.Run(fmt.Sprintf("streaming/leaves=%d", leaves), func(b *testing.B) {
			sk := &sketch.HistogramSketch{Col: "Distance", Buckets: spec}
			for i := 0; i < b.N; i++ {
				if _, err := ds.Sketch(context.Background(), sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sampled/leaves=%d", leaves), func(b *testing.B) {
			rate := sketch.Rate(sketch.HistogramSampleSize(25, 100, 0.01), rowsPerLeaf*leaves)
			for i := 0; i < b.N; i++ {
				sk := &sketch.SampledHistogramSketch{Col: "Distance", Buckets: spec, Rate: rate, Seed: uint64(i)}
				if _, err := ds.Sketch(context.Background(), sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Servers measures histogram latency as worker servers and
// data grow together over loopback TCP (Figure 8).
func BenchmarkFig8Servers(b *testing.B) {
	for _, servers := range []int{1, 2, 4} {
		p := benchParams()
		p.Workers = servers
		p.WorkerParallelism = 2
		env, err := bench.StartHV(p)
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("b8-%d", servers)
		src := fmt.Sprintf("flights:rows=100000,parts=8,cols=20,seed=%d00{worker}", p.Seed)
		if _, err := env.Sheet.Load(name, src); err != nil {
			env.Close()
			b.Fatal(err)
		}
		spec := sketch.NumericBuckets(table.KindDouble, 0, 3000, 25)
		b.Run(fmt.Sprintf("streaming/servers=%d", servers), func(b *testing.B) {
			sk := &sketch.HistogramSketch{Col: "Distance", Buckets: spec}
			for i := 0; i < b.N; i++ {
				env.Sheet.Root().Cache().InvalidateDataset(name) // cacheable sketch
				if _, err := env.Sheet.Root().RunSketch(context.Background(), name, sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sampled/servers=%d", servers), func(b *testing.B) {
			rate := sketch.Rate(sketch.HistogramSampleSize(25, 100, 0.01), 100000*servers)
			for i := 0; i < b.N; i++ {
				sk := &sketch.SampledHistogramSketch{Col: "Distance", Buckets: spec, Rate: rate, Seed: uint64(i)}
				if _, err := env.Sheet.Root().RunSketch(context.Background(), name, sk, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		env.Close()
	}
}

// BenchmarkFig11Case replays the case-study scripts (Figure 11 machine
// time).
func BenchmarkFig11Case(b *testing.B) {
	root := engine.NewRoot(storage.NewLoader(engine.Config{AggregationWindow: -1}, 0))
	sheet := spreadsheet.New(root)
	view, err := sheet.Load("fl", "flights:rows=50000,parts=4,seed=7")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig11(view); err != nil {
			b.Fatal(err)
		}
	}
}
